package detector

import (
	"runtime"
	"sync"

	"sybilwild/internal/features"
	"sybilwild/internal/graph"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
)

// Pipeline is the sharded, concurrent counterpart of Monitor. Accounts
// are hash-partitioned across N shards; each shard owns the feature
// counters of its accounts outright (no shared tracker, no global
// lock) and drains its own buffered event channel. Observe is the
// fan-out dispatcher: it routes each event to the shard owning the
// actor and the shard owning the target, so every counter is written
// by exactly one goroutine. Flags from all shards funnel through a
// single merge goroutine, which records them and fires the flag hook.
//
// Fed the same single-goroutine event stream over the same static
// graph, Pipeline flags exactly the set Monitor flags (per-account
// event order is preserved end to end); Monitor remains the serial
// reference implementation that TestPipelineMatchesMonitor checks
// against. Observe itself is safe to call from many goroutines, which
// is how production traffic — per-frontend feeds — would enter it.
//
// Lifecycle: NewPipeline starts the shard and merge goroutines
// immediately; call Observe per event (or ObserveBatch per wire
// batch), then Close exactly once, after all Observe/ObserveBatch
// calls have returned, to drain and stop. Flagged state may be
// queried at any time; Tracked and Graph only after Close.
type Pipeline struct {
	c          Classifier
	checkEvery int

	// Graph access. In the default mode g is a caller-provided graph
	// that must not be mutated while the pipeline runs, and gmu is
	// unused. With WithGraphReconstruction the pipeline owns g, grows
	// it from accept events under gmu, and shards take the read side
	// to compute clustering coefficients.
	g        *graph.Graph
	gmu      sync.RWMutex
	ownGraph bool

	shards []*pshard

	flags     chan Flag
	mergeDone chan struct{}
	syncAck   chan struct{} // merge's reply to a mergeSyncID sentinel
	onFlag    func(Flag)

	fmu     sync.RWMutex
	flagged map[osn.AccountID]Flag

	// lastSeq is the highest stream sequence stamped by a sequenced
	// ingestion call (ObserveBatchSeq). Written and read only from the
	// ingestion/snapshot goroutine — the snapshot contract requires
	// Snapshot not to overlap Observe calls anyway.
	lastSeq uint64

	closeOnce sync.Once
}

// Flag is one detection verdict: which account, when, and the feature
// vector that crossed the thresholds.
type Flag struct {
	ID     osn.AccountID
	At     sim.Time
	Vector features.Vector
}

// pshard is one partition: a goroutine draining in, the feature
// counters of the accounts hashed to it, and its slice of the
// per-account evaluation bookkeeping. The shard keeps the full Flag
// record (not just a bit) so a snapshot barrier can serialize verdicts
// from the shard's own state, consistent with its counters, without
// racing the merge goroutine.
type pshard struct {
	p       *Pipeline
	in      chan shardMsg
	tr      *features.Tracker
	seen    map[osn.AccountID]int
	flagged map[osn.AccountID]Flag
	done    chan struct{}
}

// shardEvent tells a shard which side(s) of the event it owns. When
// actor and target hash to the same shard one message carries both
// roles.
type shardEvent struct {
	ev            osn.Event
	actor, target bool
}

// shardMsg is one channel hop to a shard: a single event (Observe,
// allocation-free), a batch (ObserveBatch, one hop per shard per wire
// batch), or a snapshot barrier (Snapshot/Reshard): the shard
// serializes its partition at that exact point in its event order and
// replies on the channel.
type shardMsg struct {
	one     shardEvent
	batch   []shardEvent     // non-nil: batch dispatch
	barrier chan<- shardPart // non-nil: serialize and reply
}

// PipelineOption configures NewPipeline.
type PipelineOption func(*Pipeline)

// WithShards sets the shard count (default runtime.GOMAXPROCS(0);
// values < 1 mean the default).
func WithShards(n int) PipelineOption {
	return func(p *Pipeline) {
		if n >= 1 {
			p.shards = make([]*pshard, n)
		}
	}
}

// WithCheckEvery evaluates an account every n-th request it sends,
// like Monitor.CheckEvery (values < 1 normalize to 1).
func WithCheckEvery(n int) PipelineOption {
	return func(p *Pipeline) { p.checkEvery = n }
}

// WithFlagHook installs fn, called exactly once per flagged account
// from the merge goroutine (so hooks never run concurrently). The hook
// must not call Close or Observe (feeding events from the merge
// goroutine can deadlock against a full shard buffer); to act on the
// network, record the flag and apply it from the producer side, as
// TestMonitorOnLiveCampaign's ban action does.
func WithFlagHook(fn func(Flag)) PipelineOption {
	return func(p *Pipeline) { p.onFlag = fn }
}

// WithGraphReconstruction has the pipeline build its own friendship
// graph from the accept events it observes, the way detectd
// reconstructs Renren's store from the feed. The graph argument to
// NewPipeline is ignored and may be nil.
func WithGraphReconstruction() PipelineOption {
	return func(p *Pipeline) { p.ownGraph = true }
}

// shardBuffer is the per-shard channel depth. Deep enough to ride out
// shard-local bursts (one account evaluating an expensive clustering
// coefficient), small enough that backpressure reaches the producer
// before memory does.
const shardBuffer = 1024

// NewPipeline builds and starts a pipeline classifying with c over
// friendship graph g. The returned pipeline is live: wire Observe to
// an event source (e.g. Network.RegisterObserver) and Close when the
// stream ends.
func NewPipeline(c Classifier, g *graph.Graph, opts ...PipelineOption) *Pipeline {
	p := &Pipeline{
		c:          c,
		g:          g,
		checkEvery: 1,
		flags:      make(chan Flag, 256),
		mergeDone:  make(chan struct{}),
		syncAck:    make(chan struct{}, 1),
		flagged:    make(map[osn.AccountID]Flag),
	}
	for _, o := range opts {
		o(p)
	}
	if p.checkEvery < 1 {
		p.checkEvery = 1
	}
	if p.ownGraph {
		p.g = graph.New(0)
	}
	if p.g == nil {
		panic("detector: NewPipeline needs a graph unless WithGraphReconstruction is set")
	}
	if p.shards == nil {
		p.shards = make([]*pshard, runtime.GOMAXPROCS(0))
	}
	for i := range p.shards {
		s := newShard(p)
		p.shards[i] = s
		go s.run()
	}
	go p.merge()
	return p
}

// shardIdx hash-partitions an account. Dense sequential IDs are mixed
// (splitmix64 finalizer) so shard load stays balanced regardless of
// how IDs were assigned.
func (p *Pipeline) shardIdx(id osn.AccountID) int {
	x := uint64(uint32(id))
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(len(p.shards)))
}

func (p *Pipeline) shardOf(id osn.AccountID) *pshard {
	return p.shards[p.shardIdx(id)]
}

// Observe is the dispatcher: it routes one event to the shard(s)
// owning its endpoints, maintaining the reconstructed graph first when
// the pipeline owns it. Safe for concurrent use. Blocks when a shard's
// buffer is full — backpressure lands on the producer rather than in
// unbounded memory. Must not be called after (or concurrently with)
// Close.
func (p *Pipeline) Observe(ev osn.Event) {
	switch ev.Type {
	case osn.EvFriendRequest, osn.EvFriendAccept:
	default:
		return // no feature in §2.2 consumes the rest of the log
	}
	if p.ownGraph {
		p.extendGraph(ev)
	}
	sa := p.shardOf(ev.Actor)
	st := p.shardOf(ev.Target)
	if sa == st {
		sa.in <- shardMsg{one: shardEvent{ev: ev, actor: true, target: true}}
		return
	}
	sa.in <- shardMsg{one: shardEvent{ev: ev, actor: true}}
	st.in <- shardMsg{one: shardEvent{ev: ev, target: true}}
}

// ObserveBatch routes a whole batch of events — e.g. one wire batch
// from the v2 feed (stream.Client.RecvBatch) or a chunk of a replayed
// historical log — with at most one channel hop per shard instead of
// one per event, amortizing dispatch cost. Per-shard event order is
// the batch order, so feeding the same stream via Observe calls,
// ObserveBatch calls, or any mix of the two flags the same set.
// Safe for concurrent use under the same rules as Observe.
func (p *Pipeline) ObserveBatch(evs []osn.Event) {
	batches := make([][]shardEvent, len(p.shards))
	for _, ev := range evs {
		switch ev.Type {
		case osn.EvFriendRequest, osn.EvFriendAccept:
		default:
			continue
		}
		if p.ownGraph {
			p.extendGraph(ev)
		}
		ia := p.shardIdx(ev.Actor)
		it := p.shardIdx(ev.Target)
		if ia == it {
			batches[ia] = append(batches[ia], shardEvent{ev: ev, actor: true, target: true})
			continue
		}
		batches[ia] = append(batches[ia], shardEvent{ev: ev, actor: true})
		batches[it] = append(batches[it], shardEvent{ev: ev, target: true})
	}
	for i, b := range batches {
		if len(b) > 0 {
			p.shards[i].in <- shardMsg{batch: b}
		}
	}
}

// ObserveBatchSeq is ObserveBatch for sequenced feeds: evs is one wire
// batch whose last event carries global stream sequence lastSeq (the
// value of stream.Client.LastSeq after RecvBatch). The pipeline
// remembers the highest sequence applied so Snapshot can stamp its
// cut, which is what turns a checkpoint plus the feed's
// resume-from-sequence into exactly-once crash recovery. Sequenced
// ingestion must come from a single goroutine (the snapshot contract
// already requires quiescing Observe calls around Snapshot).
func (p *Pipeline) ObserveBatchSeq(evs []osn.Event, lastSeq uint64) {
	p.ObserveBatch(evs)
	if lastSeq > p.lastSeq {
		p.lastSeq = lastSeq
	}
}

// Seq returns the highest stream sequence applied via ObserveBatchSeq
// (zero if the pipeline has only seen unsequenced events).
func (p *Pipeline) Seq() uint64 { return p.lastSeq }

// extendGraph grows the owned graph to cover the event's accounts and
// records accept events as edges, before the event is visible to any
// shard — so a shard evaluating an account never sees counters ahead
// of the graph.
func (p *Pipeline) extendGraph(ev osn.Event) {
	hi := ev.Actor
	if ev.Target > hi {
		hi = ev.Target
	}
	// Fast path: requests between already-known accounts mutate
	// nothing, so the steady-state feed never takes the write lock and
	// the dispatcher stays off the shards' read-side critical path.
	if ev.Type == osn.EvFriendRequest {
		p.gmu.RLock()
		known := graph.NodeID(p.g.NumNodes()) > hi
		p.gmu.RUnlock()
		if known {
			return
		}
	}
	p.gmu.Lock()
	for graph.NodeID(p.g.NumNodes()) <= hi {
		p.g.AddNode()
	}
	if ev.Type == osn.EvFriendAccept && ev.Actor != ev.Target {
		p.g.AddEdge(ev.Actor, ev.Target, ev.At)
	}
	p.gmu.Unlock()
}

// fillCC computes the clustering coefficient for v.ID, taking the
// graph read lock only when the pipeline is mutating the graph itself.
func (p *Pipeline) fillCC(v *features.Vector) {
	if p.ownGraph {
		p.gmu.RLock()
	}
	if int(v.ID) < p.g.NumNodes() {
		v.CC = p.g.ClusteringFirstK(v.ID, features.FirstFriendsK)
	}
	if p.ownGraph {
		p.gmu.RUnlock()
	}
}

// newShard builds an empty, not-yet-running shard.
func newShard(p *Pipeline) *pshard {
	return &pshard{
		p:       p,
		in:      make(chan shardMsg, shardBuffer),
		tr:      features.NewTracker(p.g),
		seen:    make(map[osn.AccountID]int),
		flagged: make(map[osn.AccountID]Flag),
		done:    make(chan struct{}),
	}
}

// run is the shard loop: apply the owned side(s) of each event, then
// evaluate the sender on its due friend requests. A barrier message
// makes the shard serialize its partition — counters, cadence
// positions and verdicts at exactly this point in its event order —
// and reply before touching another event.
func (s *pshard) run() {
	defer close(s.done)
	for msg := range s.in {
		switch {
		case msg.barrier != nil:
			msg.barrier <- s.serialize()
		case msg.batch != nil:
			for _, se := range msg.batch {
				s.handle(se)
			}
		default:
			s.handle(msg.one)
		}
	}
}

func (s *pshard) handle(se shardEvent) {
	if se.actor {
		s.tr.UpdateActor(se.ev)
	}
	if se.target {
		s.tr.UpdateTarget(se.ev)
	}
	if !se.actor || se.ev.Type != osn.EvFriendRequest {
		return
	}
	id := se.ev.Actor
	if _, done := s.flagged[id]; done {
		return
	}
	s.seen[id]++
	if s.seen[id]%s.p.checkEvery != 0 {
		return
	}
	v := s.tr.CountsOf(id)
	s.p.fillCC(&v)
	if s.p.c.Classify(v) {
		f := Flag{ID: id, At: se.ev.At, Vector: v}
		s.flagged[id] = f
		s.p.flags <- f
	}
}

// mergeSyncID is the sentinel Flag ID Snapshot pushes through the
// flags channel to flush the merge stage: when merge answers it on
// syncAck, every flag enqueued before the sentinel has been recorded
// and its hook has fired. Real account IDs are never negative.
const mergeSyncID osn.AccountID = -1

// merge collects flags from all shards into the global verdict map and
// fires the hook, serialized. The dup check is a defensive backstop:
// each account is owned by exactly one shard, whose local flagged map
// already guarantees at most one Flag per account.
func (p *Pipeline) merge() {
	defer close(p.mergeDone)
	for f := range p.flags {
		if f.ID == mergeSyncID {
			p.syncAck <- struct{}{}
			continue
		}
		p.fmu.Lock()
		_, dup := p.flagged[f.ID]
		if !dup {
			p.flagged[f.ID] = f
		}
		p.fmu.Unlock()
		if !dup && p.onFlag != nil {
			p.onFlag(f)
		}
	}
}

// Close drains every shard, stops all pipeline goroutines, and waits
// for the merge stage to finish. All Observe calls must have returned.
// Close is idempotent.
func (p *Pipeline) Close() {
	p.closeOnce.Do(func() {
		for _, s := range p.shards {
			close(s.in)
		}
		for _, s := range p.shards {
			<-s.done
		}
		close(p.flags)
		<-p.mergeDone
	})
}

// NumShards returns the shard count.
func (p *Pipeline) NumShards() int { return len(p.shards) }

// Flagged reports whether an account has been flagged. Safe to call
// while the pipeline runs; a flag becomes visible once the merge stage
// has recorded it.
func (p *Pipeline) Flagged(id osn.AccountID) bool {
	p.fmu.RLock()
	_, ok := p.flagged[id]
	p.fmu.RUnlock()
	return ok
}

// FlaggedCount returns the number of flagged accounts so far.
func (p *Pipeline) FlaggedCount() int {
	p.fmu.RLock()
	n := len(p.flagged)
	p.fmu.RUnlock()
	return n
}

// FlaggedIDs returns all flagged accounts (order unspecified).
func (p *Pipeline) FlaggedIDs() []osn.AccountID {
	p.fmu.RLock()
	out := make([]osn.AccountID, 0, len(p.flagged))
	for id := range p.flagged {
		out = append(out, id)
	}
	p.fmu.RUnlock()
	return out
}

// Flags returns the full verdicts (order unspecified).
func (p *Pipeline) Flags() []Flag {
	p.fmu.RLock()
	out := make([]Flag, 0, len(p.flagged))
	for _, f := range p.flagged {
		out = append(out, f)
	}
	p.fmu.RUnlock()
	return out
}

// Tracked returns the number of accounts with observed activity,
// summed across shards. Only valid after Close (shard state is
// goroutine-local while running).
func (p *Pipeline) Tracked() int {
	n := 0
	for _, s := range p.shards {
		n += s.tr.Tracked()
	}
	return n
}

// Graph exposes the pipeline's graph — the reconstructed one under
// WithGraphReconstruction, otherwise the caller's. Only read it after
// Close.
func (p *Pipeline) Graph() *graph.Graph { return p.g }
