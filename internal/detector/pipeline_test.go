package detector

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"sybilwild/internal/agents"
	"sybilwild/internal/features"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/stats"
)

// countingClassifier wraps a Classifier and counts Classify calls.
// Atomic so the same type serves the serial Monitor and the shards.
type countingClassifier struct {
	inner Classifier
	calls atomic.Int64
}

func (c *countingClassifier) Classify(v features.Vector) bool {
	c.calls.Add(1)
	return c.inner.Classify(v)
}

// flagAll is a classifier that flags every vector it sees.
type flagAll struct{}

func (flagAll) Classify(features.Vector) bool { return true }

// campaignLog runs a small Sybil campaign and returns the finished
// population (static graph + retained event log) for replay tests.
func campaignLog(t testing.TB, seed int64) *agents.Population {
	t.Helper()
	pop := agents.NewPopulation(seed, agents.DefaultParams())
	pop.Bootstrap(1500)
	pop.LaunchSybils(25, 50*sim.TicksPerHour)
	pop.RunFor(200 * sim.TicksPerHour)
	return pop
}

func sortedIDs(ids []osn.AccountID) []osn.AccountID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestPipelineMatchesMonitor is the equivalence test the refactor
// hangs on: replaying one event stream over one static graph, the
// sharded pipeline must flag exactly the set the serial Monitor flags,
// at any shard count and sampling rate.
func TestPipelineMatchesMonitor(t *testing.T) {
	pop := campaignLog(t, 31)
	events := pop.Net.Events()
	g := pop.Net.Graph()
	rule := FitRule(features.Labelled(pop.Net, pop.Sybils, pop.Normals), PaperRule())

	for _, checkEvery := range []int{1, 3} {
		m := NewMonitor(rule, g, nil)
		m.CheckEvery = checkEvery
		for _, ev := range events {
			m.Observe(ev)
		}
		want := sortedIDs(m.FlaggedIDs())
		if len(want) == 0 {
			t.Fatalf("checkEvery=%d: monitor flagged nothing; equivalence test is vacuous", checkEvery)
		}

		for _, shards := range []int{1, 3, 8} {
			p := NewPipeline(rule, g, WithShards(shards), WithCheckEvery(checkEvery))
			for _, ev := range events {
				p.Observe(ev)
			}
			p.Close()
			got := sortedIDs(p.FlaggedIDs())
			if len(got) != len(want) {
				t.Fatalf("shards=%d checkEvery=%d: pipeline flagged %d, monitor %d",
					shards, checkEvery, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shards=%d checkEvery=%d: flagged sets differ at %d: %d vs %d",
						shards, checkEvery, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPipelineGraphReconstruction feeds a triangle-free synthetic
// stream (CC is identically zero, so graph-growth timing cannot change
// any verdict) and checks the reconstruction mode: the owned graph
// ends up identical in size to the source network's, and the flagged
// set still matches the serial Monitor exactly.
func TestPipelineGraphReconstruction(t *testing.T) {
	net := osn.NewNetwork()
	const accounts = 400
	for i := 0; i < accounts; i++ {
		net.CreateAccount(osn.Male, osn.Normal, 0)
	}
	// Account 0 behaves like a Sybil: a burst of requests to distinct
	// targets, mostly ignored. Accounts 1..20 behave normally: a few
	// requests, all accepted. Stars only — no triangles anywhere.
	at := sim.Time(0)
	for i := 1; i < 60; i++ {
		at += 2
		net.SendFriendRequest(0, osn.AccountID(i), at)
	}
	net.RespondFriendRequest(1, 0, true, at+1)
	for i := 1; i <= 20; i++ {
		from := osn.AccountID(i)
		to := osn.AccountID(100 + i)
		net.SendFriendRequest(from, to, at+sim.Time(i)*sim.TicksPerHour)
		net.RespondFriendRequest(to, from, true, at+sim.Time(i)*sim.TicksPerHour+5)
	}
	rule := PaperRule()

	m := NewMonitor(rule, net.Graph(), nil)
	for _, ev := range net.Events() {
		m.Observe(ev)
	}
	want := sortedIDs(m.FlaggedIDs())

	p := NewPipeline(rule, nil, WithShards(4), WithGraphReconstruction())
	for _, ev := range net.Events() {
		p.Observe(ev)
	}
	p.Close()

	if got, src := p.Graph().NumEdges(), net.Graph().NumEdges(); got != src {
		t.Errorf("reconstructed %d edges, source has %d", got, src)
	}
	if got, src := p.Graph().NumNodes(), net.Graph().NumNodes(); got > src {
		t.Errorf("reconstructed %d nodes, source has %d", got, src)
	}
	got := sortedIDs(p.FlaggedIDs())
	if len(got) != len(want) {
		t.Fatalf("reconstruction flagged %d, monitor %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flagged sets differ: %v vs %v", got, want)
		}
	}
	if len(want) == 0 || want[0] != 0 {
		t.Fatalf("expected the bursty account 0 flagged, got %v", want)
	}
}

// TestMonitorCheckEveryEdgeCases: 0 and negative CheckEvery normalize
// to 1 (every request evaluated), and flagged accounts are never
// re-evaluated.
func TestMonitorCheckEveryEdgeCases(t *testing.T) {
	for _, every := range []int{0, -3} {
		net := osn.NewNetwork()
		a := net.CreateAccount(osn.Female, osn.Sybil, 0)
		for i := 0; i < 5; i++ {
			net.CreateAccount(osn.Male, osn.Normal, 0)
		}
		cc := &countingClassifier{inner: Rule{OutAcceptMax: 2, FreqMin: -1, CCMax: 2, MinObserved: 3}}
		m := NewMonitor(cc, net.Graph(), nil)
		m.CheckEvery = every
		net.RegisterObserver(m.Observe)
		for i := 1; i <= 5; i++ {
			net.SendFriendRequest(a, osn.AccountID(i), sim.Time(i))
		}
		// Every one of the 5 requests must have been evaluated; the rule
		// fires on the 3rd (MinObserved), after which the account is
		// skipped without consulting the classifier.
		if got := cc.calls.Load(); got != 3 {
			t.Errorf("CheckEvery=%d: classify calls = %d, want 3 (evaluate every request, stop once flagged)", every, got)
		}
		if !m.Flagged(a) {
			t.Errorf("CheckEvery=%d: account not flagged", every)
		}
	}
}

// TestPipelineCheckEveryEdgeCases mirrors the Monitor edge cases on
// the concurrent implementation.
func TestPipelineCheckEveryEdgeCases(t *testing.T) {
	for _, every := range []int{0, -3} {
		net := osn.NewNetwork()
		a := net.CreateAccount(osn.Female, osn.Sybil, 0)
		for i := 0; i < 5; i++ {
			net.CreateAccount(osn.Male, osn.Normal, 0)
		}
		cc := &countingClassifier{inner: Rule{OutAcceptMax: 2, FreqMin: -1, CCMax: 2, MinObserved: 3}}
		p := NewPipeline(cc, net.Graph(), WithShards(2), WithCheckEvery(every))
		net.RegisterObserver(p.Observe)
		for i := 1; i <= 5; i++ {
			net.SendFriendRequest(a, osn.AccountID(i), sim.Time(i))
		}
		p.Close()
		if got := cc.calls.Load(); got != 3 {
			t.Errorf("CheckEvery=%d: classify calls = %d, want 3", every, got)
		}
		if !p.Flagged(a) {
			t.Errorf("CheckEvery=%d: account not flagged", every)
		}
	}
}

// TestPipelineFlagHookOnce: the hook fires exactly once per account,
// from a single goroutine, with the triggering vector attached.
func TestPipelineFlagHookOnce(t *testing.T) {
	seen := make(map[osn.AccountID]int)
	p := NewPipeline(flagAll{}, nil,
		WithShards(4),
		WithGraphReconstruction(),
		WithFlagHook(func(f Flag) {
			seen[f.ID]++ // merge goroutine only; -race proves it
			if f.Vector.OutSent == 0 {
				t.Error("flag vector missing counts")
			}
		}))
	net := osn.NewNetwork()
	for i := 0; i < 20; i++ {
		net.CreateAccount(osn.Male, osn.Normal, 0)
	}
	net.RegisterObserver(p.Observe)
	for i := 0; i < 10; i++ {
		for j := 10; j < 20; j++ {
			net.SendFriendRequest(osn.AccountID(i), osn.AccountID(j), sim.Time(10*i+j))
		}
	}
	p.Close()
	if len(seen) != 10 {
		t.Fatalf("hook saw %d accounts, want 10", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("hook fired %d times for account %d", n, id)
		}
	}
	if p.FlaggedCount() != 10 {
		t.Fatalf("FlaggedCount = %d, want 10", p.FlaggedCount())
	}
}

// TestPipelineConcurrentStress hammers one pipeline from many producer
// goroutines over overlapping account ranges while another goroutine
// polls the flag state — the -race workout for every lock and channel
// in the pipeline.
func TestPipelineConcurrentStress(t *testing.T) {
	const (
		producers = 8
		accounts  = 2000
		perProd   = 4000
	)
	rule := Rule{OutAcceptMax: 0.9, FreqMin: 0.1, CCMax: 1.1, MinObserved: 8}
	p := NewPipeline(rule, nil, WithShards(4), WithGraphReconstruction(), WithCheckEvery(2))

	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := stats.NewRand(int64(100 + w))
			for i := 0; i < perProd; i++ {
				from := osn.AccountID(r.Intn(accounts))
				to := osn.AccountID(r.Intn(accounts))
				if from == to {
					continue
				}
				at := sim.Time(i)
				p.Observe(osn.Event{Type: osn.EvFriendRequest, At: at, Actor: from, Target: to})
				if r.Bernoulli(0.4) {
					p.Observe(osn.Event{Type: osn.EvFriendAccept, At: at + 1, Actor: to, Target: from})
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var polls atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = p.FlaggedCount()
				_ = p.Flagged(osn.AccountID(polls.Add(1) % accounts))
			}
		}
	}()
	wg.Wait()
	close(stop)
	p.Close()

	if p.FlaggedCount() == 0 {
		t.Fatal("stress run flagged nothing")
	}
	if p.Tracked() == 0 || p.Tracked() > accounts {
		t.Fatalf("tracked %d accounts, want (0, %d]", p.Tracked(), accounts)
	}
	if p.Graph().NumNodes() > accounts {
		t.Fatalf("reconstructed graph has %d nodes, want ≤ %d", p.Graph().NumNodes(), accounts)
	}
	p.Close() // idempotent
}

// TestIngestMatchesObserve: chunked batch ingestion (any chunk
// size, including a mix of batch and single-event dispatch) must flag
// exactly the set that per-event Observe — and therefore the serial
// Monitor — flags.
func TestIngestMatchesObserve(t *testing.T) {
	pop := campaignLog(t, 47)
	events := pop.Net.Events()
	g := pop.Net.Graph()
	rule := FitRule(features.Labelled(pop.Net, pop.Sybils, pop.Normals), PaperRule())

	ref := NewPipeline(rule, g, WithShards(4))
	for _, ev := range events {
		ref.Observe(ev)
	}
	ref.Close()
	want := sortedIDs(ref.FlaggedIDs())
	if len(want) == 0 {
		t.Fatal("reference pipeline flagged nothing; equivalence test is vacuous")
	}

	for _, chunk := range []int{1, 7, 256, len(events)} {
		p := NewPipeline(rule, g, WithShards(4))
		for i := 0; i < len(events); i += chunk {
			end := i + chunk
			if end > len(events) {
				end = len(events)
			}
			if (i/chunk)%5 == 4 { // interleave single-event dispatch
				for _, ev := range events[i:end] {
					p.Observe(ev)
				}
			} else {
				p.Ingest(Batch{Events: events[i:end]})
			}
		}
		p.Close()
		got := sortedIDs(p.FlaggedIDs())
		if len(got) != len(want) {
			t.Fatalf("chunk=%d: batch path flagged %d, per-event %d", chunk, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("chunk=%d: flagged sets differ at %d: %d vs %d", chunk, i, got[i], want[i])
			}
		}
	}
}

// TestIngestMatchesMonitorWithBarriers is the routing-rewrite
// equivalence test: batch-first ingestion across shard counts
// {1, 2, 4, 7}, with a Snapshot barrier and two live Reshards cutting
// through the middle of the trace, must flag exactly the set the
// serial Monitor flags. The barriers exercise the arena-ring rebuild
// (Reshard resizes the partition tables) and the consistent-cut
// machinery under the new sub-batch dispatch.
func TestIngestMatchesMonitorWithBarriers(t *testing.T) {
	pop := campaignLog(t, 83)
	events := pop.Net.Events()
	g := pop.Net.Graph()
	rule := FitRule(features.Labelled(pop.Net, pop.Sybils, pop.Normals), PaperRule())

	m := NewMonitor(rule, g, nil)
	for _, ev := range events {
		m.Observe(ev)
	}
	want := sortedIDs(m.FlaggedIDs())
	if len(want) == 0 {
		t.Fatal("monitor flagged nothing; equivalence test is vacuous")
	}

	for _, shards := range []int{1, 2, 4, 7} {
		p := NewPipeline(rule, g, WithShards(shards))
		const chunk = 256
		q1, q2, q3 := len(events)/4, len(events)/2, 3*len(events)/4
		for i := 0; i < len(events); i += chunk {
			end := i + chunk
			if end > len(events) {
				end = len(events)
			}
			p.Ingest(Batch{Events: events[i:end]})
			switch {
			case i < q1 && end >= q1:
				p.Reshard(shards + 2)
			case i < q2 && end >= q2:
				if snap := p.Snapshot(); len(snap.Accounts) == 0 {
					t.Fatalf("shards=%d: mid-trace snapshot is empty", shards)
				}
			case i < q3 && end >= q3:
				p.Reshard(shards)
			}
		}
		p.Close()
		got := sortedIDs(p.FlaggedIDs())
		if len(got) != len(want) {
			t.Fatalf("shards=%d: pipeline flagged %d, monitor %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: flagged sets differ at %d: %d vs %d", shards, i, got[i], want[i])
			}
		}
	}
}

// TestIngestConcurrentStress hammers the batch path from many
// unsequenced Ingest goroutines (mixed with per-event Observe callers)
// — the -race workout for the arena ring: concurrent callers must get
// distinct arenas and recycling must never hand a buffer back while a
// shard still reads it.
func TestIngestConcurrentStress(t *testing.T) {
	const (
		producers = 6
		accounts  = 1500
		batches   = 300
		batchLen  = 64
	)
	rule := Rule{OutAcceptMax: 0.9, FreqMin: 0.1, CCMax: 1.1, MinObserved: 8}
	p := NewPipeline(rule, nil, WithShards(4), WithGraphReconstruction(), WithCheckEvery(2))

	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := stats.NewRand(int64(200 + w))
			evs := make([]osn.Event, 0, 2*batchLen)
			for i := 0; i < batches; i++ {
				evs = evs[:0]
				for j := 0; j < batchLen; j++ {
					from := osn.AccountID(r.Intn(accounts))
					to := osn.AccountID(r.Intn(accounts))
					if from == to {
						continue
					}
					at := sim.Time(i*batchLen + j)
					evs = append(evs, osn.Event{Type: osn.EvFriendRequest, At: at, Actor: from, Target: to})
					if r.Bernoulli(0.4) {
						evs = append(evs, osn.Event{Type: osn.EvFriendAccept, At: at + 1, Actor: to, Target: from})
					}
				}
				if w%2 == 0 || i%7 != 0 {
					p.Ingest(Batch{Events: evs})
				} else {
					for _, ev := range evs {
						p.Observe(ev)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	p.Close()

	if p.FlaggedCount() == 0 {
		t.Fatal("stress run flagged nothing")
	}
	if p.Tracked() == 0 || p.Tracked() > accounts {
		t.Fatalf("tracked %d accounts, want (0, %d]", p.Tracked(), accounts)
	}
}

// TestIngestGraphReconstruction: the batch path must also grow
// the owned graph correctly (same star-shaped, triangle-free stream as
// TestPipelineGraphReconstruction).
func TestIngestGraphReconstruction(t *testing.T) {
	net := osn.NewNetwork()
	for i := 0; i < 300; i++ {
		net.CreateAccount(osn.Male, osn.Normal, 0)
	}
	at := sim.Time(0)
	for i := 1; i <= 40; i++ {
		from := osn.AccountID(i)
		to := osn.AccountID(100 + i)
		at += sim.TicksPerHour
		net.SendFriendRequest(from, to, at)
		net.RespondFriendRequest(to, from, true, at+5)
	}
	p := NewPipeline(PaperRule(), nil, WithShards(3), WithGraphReconstruction())
	p.Ingest(Batch{Events: net.Events()})
	p.Close()
	if got, src := p.Graph().NumEdges(), net.Graph().NumEdges(); got != src {
		t.Errorf("reconstructed %d edges, source has %d", got, src)
	}
}
