package detector

import (
	"testing"

	"sybilwild/internal/features"
	"sybilwild/internal/stats"
)

func ablationDataset(n int) features.Dataset {
	r := stats.NewRand(5)
	var ds features.Dataset
	for i := 0; i < n; i++ {
		s := sybilVec()
		s.Freq1h = 40 + r.Float64()*40
		s.OutAccept = 0.15 + r.Float64()*0.2
		s.CC = r.Float64() * 0.002
		s.InAccept = 1
		ds.Vectors = append(ds.Vectors, s)
		ds.Labels = append(ds.Labels, true)

		v := normalVec()
		v.Freq1h = r.Float64() * 2
		v.OutAccept = 0.6 + r.Float64()*0.4
		v.CC = 0.03 + r.Float64()*0.1
		v.InAccept = r.Float64()
		ds.Vectors = append(ds.Vectors, v)
		ds.Labels = append(ds.Labels, false)
	}
	return ds
}

func TestEvaluateFeaturesSeparable(t *testing.T) {
	ds := ablationDataset(100)
	evals := EvaluateFeatures(ds, 5, 5, 1)
	if len(evals) != len(FeatureNames) {
		t.Fatalf("evals = %d", len(evals))
	}
	for _, e := range evals {
		if e.Name == "freq400h" {
			continue // not varied in this synthetic set
		}
		if acc := e.Confusion.Accuracy(); acc < 0.95 {
			t.Errorf("%s standalone accuracy = %.3f on separable data", e.Name, acc)
		}
	}
	// Directions must match the paper's semantics.
	byName := map[string]FeatureEval{}
	for _, e := range evals {
		byName[e.Name] = e
	}
	if byName["freq1h"].SybilBelow {
		t.Error("freq1h direction inverted: Sybils are high-frequency")
	}
	if !byName["outAccept"].SybilBelow {
		t.Error("outAccept direction inverted: Sybils have low accept ratios")
	}
	if !byName["cc"].SybilBelow {
		t.Error("cc direction inverted: Sybils have low clustering")
	}
}

func TestEvaluateFeaturesMinObserved(t *testing.T) {
	var ds features.Dataset
	// Every account below the observation floor: all evals empty.
	for i := 0; i < 10; i++ {
		v := sybilVec()
		v.OutSent = 1
		ds.Vectors = append(ds.Vectors, v)
		ds.Labels = append(ds.Labels, true)
	}
	evals := EvaluateFeatures(ds, 5, 5, 1)
	for _, e := range evals {
		total := e.Confusion.TP + e.Confusion.TN + e.Confusion.FP + e.Confusion.FN
		if total != 0 {
			t.Fatalf("%s evaluated %d filtered samples", e.Name, total)
		}
	}
}

func TestEvaluateFeaturesCVCoversEverySample(t *testing.T) {
	ds := ablationDataset(40)
	evals := EvaluateFeatures(ds, 5, 4, 2)
	for _, e := range evals {
		total := e.Confusion.TP + e.Confusion.TN + e.Confusion.FP + e.Confusion.FN
		if total != len(ds.Vectors) {
			t.Fatalf("%s covered %d of %d samples", e.Name, total, len(ds.Vectors))
		}
	}
}

func TestFitStumpDirections(t *testing.T) {
	// Sybils high.
	var xs []sample
	for i := 0; i < 20; i++ {
		xs = append(xs, sample{50 + float64(i), true})
		xs = append(xs, sample{float64(i), false})
	}
	cut, below := fitStump(xs)
	if below {
		t.Fatal("direction wrong for sybils-high data")
	}
	if cut < 19 || cut > 50 {
		t.Fatalf("cut = %v", cut)
	}
	// Sybils low.
	for i := range xs {
		xs[i].sybil = !xs[i].sybil
	}
	_, below = fitStump(xs)
	if !below {
		t.Fatal("direction wrong for sybils-low data")
	}
}
