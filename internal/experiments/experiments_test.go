package experiments

import (
	"strings"
	"sync"
	"testing"
)

// The small runner is shared across tests: building the campaign is
// the expensive part and every driver is read-only over it.
var (
	runnerOnce sync.Once
	testRunner *Runner
)

func smallRunner(t *testing.T) *Runner {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment drivers in -short mode")
	}
	runnerOnce.Do(func() { testRunner = NewSmallRunner(5) })
	return testRunner
}

func TestIDsDispatch(t *testing.T) {
	r := smallRunner(t)
	for _, id := range IDs() {
		rep, err := r.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if rep.ID != id || rep.Title == "" || rep.Body == "" {
			t.Fatalf("%s: malformed report %+v", id, rep)
		}
		if len(rep.Values) == 0 {
			t.Fatalf("%s: no values", id)
		}
	}
	if _, err := r.Run("nope"); err == nil {
		t.Fatal("unknown id did not error")
	}
}

func TestFig1PaperShape(t *testing.T) {
	r := smallRunner(t)
	rep, _ := r.Run("fig1")
	v := rep.Values
	// ≈70% of Sybils average ≥40 invites/hour (paper); generous band.
	if v["sybil_frac_ge40_per_h"] < 0.5 || v["sybil_frac_ge40_per_h"] > 0.9 {
		t.Errorf("sybil_frac_ge40 = %.3f, want ≈0.70", v["sybil_frac_ge40_per_h"])
	}
	// The 40/h cut has no false positives (paper).
	if v["cut40_fpr"] > 0.001 {
		t.Errorf("cut40 FPR = %.4f, want ≈0", v["cut40_fpr"])
	}
	if v["cut40_tpr"] < 0.5 {
		t.Errorf("cut40 TPR = %.3f, want ≈0.70", v["cut40_tpr"])
	}
	// Normal users essentially never cross 20 per interval.
	if v["normal_frac_above20"] > 0.01 {
		t.Errorf("normals above 20/interval = %.4f", v["normal_frac_above20"])
	}
}

func TestFig2PaperShape(t *testing.T) {
	r := smallRunner(t)
	rep, _ := r.Run("fig2")
	v := rep.Values
	if v["sybil_mean"] < 0.12 || v["sybil_mean"] > 0.42 {
		t.Errorf("sybil mean accept = %.3f, want ≈0.26", v["sybil_mean"])
	}
	if v["normal_mean"] < 0.65 || v["normal_mean"] > 0.9 {
		t.Errorf("normal mean accept = %.3f, want ≈0.79", v["normal_mean"])
	}
}

func TestFig3PaperShape(t *testing.T) {
	r := smallRunner(t)
	rep, _ := r.Run("fig3")
	v := rep.Values
	if v["sybil_frac_accept_all"] < 0.6 {
		t.Errorf("sybils accepting all = %.3f, want ≈0.80", v["sybil_frac_accept_all"])
	}
	if v["normal_std"] < 0.1 {
		t.Errorf("normal incoming accept std = %.3f, want spread", v["normal_std"])
	}
}

func TestFig4PaperShape(t *testing.T) {
	r := smallRunner(t)
	rep, _ := r.Run("fig4")
	v := rep.Values
	if v["ratio"] < 5 {
		t.Errorf("cc ratio normal/sybil = %.1f, want ≫1", v["ratio"])
	}
}

func TestTable1PaperShape(t *testing.T) {
	r := smallRunner(t)
	rep, _ := r.Run("table1")
	v := rep.Values
	// Paper: ≈99% per class for both classifiers. Allow a band at the
	// smaller simulated scale.
	for _, k := range []string{"svm_tpr", "svm_tnr", "thr_tpr", "thr_tnr"} {
		if v[k] < 0.93 {
			t.Errorf("%s = %.4f, want ≥0.93 (paper ≈0.99)", k, v[k])
		}
	}
	for _, k := range []string{"svm_fpr", "thr_fpr"} {
		if v[k] > 0.05 {
			t.Errorf("%s = %.4f, want small", k, v[k])
		}
	}
}

func TestFig5PaperShape(t *testing.T) {
	r := smallRunner(t)
	rep, _ := r.Run("fig5")
	v := rep.Values
	if v["frac_with_sybil_edge"] < 0.10 || v["frac_with_sybil_edge"] > 0.35 {
		t.Errorf("frac with sybil edge = %.3f, want ≈0.20", v["frac_with_sybil_edge"])
	}
}

func TestFig6PaperShape(t *testing.T) {
	r := smallRunner(t)
	rep, _ := r.Run("fig6")
	v := rep.Values
	if v["frac_small"] < 0.9 {
		t.Errorf("small-component fraction = %.3f, want ≈0.98", v["frac_small"])
	}
	if v["giant_share"] < 0.25 {
		t.Errorf("giant share = %.3f", v["giant_share"])
	}
}

func TestTable2PaperShape(t *testing.T) {
	r := smallRunner(t)
	rep, _ := r.Run("table2")
	v := rep.Values
	// Ordered by size, attack ≫ sybil edges, audience > 0 everywhere.
	if v["c0_sybils"] <= v["c1_sybils"] {
		t.Errorf("components not ordered: %v vs %v", v["c0_sybils"], v["c1_sybils"])
	}
	for i := 0; i < 5; i++ {
		p := func(k string) float64 { return v[k] }
		idx := string(rune('0' + i))
		if p("c"+idx+"_attack_edges") <= p("c"+idx+"_sybil_edges") {
			t.Errorf("component %d: attack ≤ sybil edges", i)
		}
		if p("c"+idx+"_audience") <= 0 {
			t.Errorf("component %d: zero audience", i)
		}
	}
	// The audience-dense narrow fleet (Table 2 row 2 in the paper):
	// some top component has audience ≪ attack edges.
	found := false
	for i := 1; i < 5; i++ {
		idx := string(rune('0' + i))
		if v["c"+idx+"_audience"] < v["c"+idx+"_attack_edges"]/4 {
			found = true
		}
	}
	if !found {
		t.Error("no audience-dense component among the top 5")
	}
}

func TestFig7PaperShape(t *testing.T) {
	r := smallRunner(t)
	rep, _ := r.Run("fig7")
	if rep.Values["frac_above_diagonal"] < 0.999 {
		t.Errorf("components above y=x = %.4f, want 100%%", rep.Values["frac_above_diagonal"])
	}
}

func TestFig8PaperShape(t *testing.T) {
	r := smallRunner(t)
	rep, _ := r.Run("fig8")
	v := rep.Values
	if v["position_mean"] < 0.35 || v["position_mean"] > 0.65 {
		t.Errorf("position mean = %.3f, want ≈0.5 (uniform)", v["position_mean"])
	}
	if v["ks_uniform"] > 0.25 {
		t.Errorf("KS distance = %.3f, want small", v["ks_uniform"])
	}
}

func TestFig9PaperShape(t *testing.T) {
	r := smallRunner(t)
	rep, _ := r.Run("fig9")
	v := rep.Values
	if v["frac_deg1"] < 0.2 || v["frac_deg1"] > 0.6 {
		t.Errorf("giant degree-1 fraction = %.3f, want ≈0.345", v["frac_deg1"])
	}
	if v["frac_le10"] < 0.8 {
		t.Errorf("giant ≤10 fraction = %.3f, want ≈0.937", v["frac_le10"])
	}
}

func TestExt1DefensesCollapseInTheWild(t *testing.T) {
	r := smallRunner(t)
	rep, _ := r.Run("ext1")
	for _, name := range []string{"SybilGuard", "SybilLimit", "SybilInfer", "SumUp", "CommunityRank"} {
		tight := rep.Values["tight_gap_"+name]
		wild := rep.Values["wild_gap_"+name]
		if tight < 0.3 {
			t.Errorf("%s: tight-community gap %.2f, want working defense", name, tight)
		}
		if wild > 0.25 {
			t.Errorf("%s: wild gap %.2f, want collapsed", name, wild)
		}
	}
}

func TestReportString(t *testing.T) {
	rep := Report{ID: "x", Title: "t", Body: "b\n"}
	if !strings.Contains(rep.String(), "x: t") {
		t.Fatalf("render: %q", rep.String())
	}
}

func TestExt2HoneypotPopularityMatters(t *testing.T) {
	r := smallRunner(t)
	rep, err := r.Run("ext2")
	if err != nil {
		t.Fatal(err)
	}
	pop := rep.Values["sybil_reqs_popular"]
	unpop := rep.Values["sybil_reqs_unpopular"]
	if pop < 3*unpop+3 {
		t.Errorf("popular honeypots trapped %v sybil requests vs unpopular %v; want popular ≫ unpopular", pop, unpop)
	}
}

func TestExt3FeatureAblation(t *testing.T) {
	r := smallRunner(t)
	rep, err := r.Run("ext3")
	if err != nil {
		t.Fatal(err)
	}
	v := rep.Values
	// The frequency features are near-perfect alone (Figure 1's clear
	// separation); every feature must beat a coin flip by a wide margin.
	if v["acc_freq1h"] < 0.95 {
		t.Errorf("freq1h standalone accuracy = %.3f", v["acc_freq1h"])
	}
	for _, f := range []string{"freq400h", "outAccept", "cc"} {
		if v["acc_"+f] < 0.75 {
			t.Errorf("%s standalone accuracy = %.3f, want ≥0.75", f, v["acc_"+f])
		}
	}
	if v["acc_full"] < v["acc_outAccept"]-0.01 {
		t.Errorf("full rule (%.3f) below single feature (%.3f)", v["acc_full"], v["acc_outAccept"])
	}
}

func TestRunnerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism check in -short mode")
	}
	// Two independent small runners with the same seed must produce
	// byte-identical reports for a behavioural and a topological
	// experiment.
	for _, id := range []string{"fig2", "fig6"} {
		a, err := NewSmallRunner(17).Run(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewSmallRunner(17).Run(id)
		if err != nil {
			t.Fatal(err)
		}
		if a.Body != b.Body {
			t.Fatalf("%s: same seed produced different reports", id)
		}
		for k, v := range a.Values {
			if b.Values[k] != v {
				t.Fatalf("%s: value %s differs: %v vs %v", id, k, v, b.Values[k])
			}
		}
	}
}
