package experiments

import (
	"fmt"

	"sybilwild/internal/detector"
	"sybilwild/internal/stats"
)

// Ext3 — per-feature ablation of the detector. §2.2 presents each of
// the four behavioural attributes as individually discriminative; this
// experiment quantifies that by fitting a single-feature stump per
// attribute and reporting its stand-alone accuracy next to the full
// three-feature rule and the SVM.
func Ext3(gt *GroundTruth) Report {
	bal := balance(gt)
	evals := detector.EvaluateFeatures(bal, detector.PaperRule().MinObserved, 5, gt.Cfg.Seed)

	rows := make([][]string, 0, len(evals)+1)
	vals := map[string]float64{}
	for _, e := range evals {
		dir := ">"
		if e.SybilBelow {
			dir = "<"
		}
		rows = append(rows, []string{
			e.Name,
			fmt.Sprintf("%s %.4g", dir, e.Cut),
			pct(e.Confusion.TPR()),
			pct(e.Confusion.FPR()),
			pct(e.Confusion.Accuracy()),
		})
		vals["acc_"+e.Name] = e.Confusion.Accuracy()
		vals["tpr_"+e.Name] = e.Confusion.TPR()
	}
	full := crossValidateRule(bal, 5, gt.Cfg.Seed)
	rows = append(rows, []string{"ALL (3-feature rule)", "-",
		pct(full.TPR()), pct(full.FPR()), pct(full.Accuracy())})
	vals["acc_full"] = full.Accuracy()

	body := stats.Table([]string{"Feature", "Sybil side", "TPR", "FPR", "Accuracy"}, rows)
	return Report{
		ID:     "ext3",
		Title:  "Per-feature ablation of the threshold detector",
		Body:   body,
		Values: vals,
	}
}
