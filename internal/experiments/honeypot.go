package experiments

import (
	"fmt"
	"strings"

	"sybilwild/internal/agents"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/stats"
)

// Ext2Config sizes the social-honeypot experiment.
type Ext2Config struct {
	Seed      int64
	Normals   int
	Sybils    int
	Honeypots int // per class (popular / unpopular)
	Hours     int64
}

// DefaultExt2 returns the default honeypot experiment size.
func DefaultExt2(seed int64) Ext2Config {
	return Ext2Config{Seed: seed, Normals: 5000, Sybils: 80, Honeypots: 30, Hours: 400}
}

// Ext2 — social honeypots (paper §4, discussing Webb et al.): "unless
// social honeypots are engineered to appear popular, they are unlikely
// to be targeted by spammers." Two honeypot classes join the network
// before the attack: unpopular ones (fresh accounts with no friends)
// and popular ones (seeded with many friendships, like an established
// super node). The experiment measures how many Sybil friend requests
// each class traps during the campaign.
func Ext2(cfg Ext2Config) Report {
	pop := agents.NewPopulation(cfg.Seed, agents.DefaultParams())
	pop.Bootstrap(cfg.Normals)
	r := stats.NewRand(cfg.Seed + 99)
	g := pop.Net.Graph()

	// Honeypots are passive: they never send requests and never
	// respond, exactly like a monitoring account. They are created
	// before the observation window so tools see them as established.
	preAttack := pop.ObsStart - 10*sim.TicksPerDay
	var unpopular, popular []osn.AccountID
	for i := 0; i < cfg.Honeypots; i++ {
		unpopular = append(unpopular, pop.CreatePage(preAttack))
	}
	for i := 0; i < cfg.Honeypots; i++ {
		hp := pop.CreatePage(preAttack)
		popular = append(popular, hp)
		// Engineer popularity: seed the profile with friendships to
		// random established users (what Webb-style honeypots lack).
		for e := 0; e < 60; e++ {
			v := pop.Normals[r.Intn(len(pop.Normals))]
			g.AddEdge(hp, v, preAttack)
		}
	}

	// Count requests received per honeypot class, split by sender kind.
	isHP := map[osn.AccountID]int{} // 0 = unpopular, 1 = popular
	for _, id := range unpopular {
		isHP[id] = 0
	}
	for _, id := range popular {
		isHP[id] = 1
	}
	var sybilReqs, normalReqs [2]int
	pop.Net.RegisterObserver(func(ev osn.Event) {
		if ev.Type != osn.EvFriendRequest {
			return
		}
		class, ok := isHP[ev.Target]
		if !ok {
			return
		}
		if pop.Net.Account(ev.Actor).Kind == osn.Sybil {
			sybilReqs[class]++
		} else {
			normalReqs[class]++
		}
	})

	pop.LaunchSybils(cfg.Sybils, 100*sim.TicksPerHour)
	pop.RunFor(cfg.Hours * sim.TicksPerHour)

	perUnpop := float64(sybilReqs[0]) / float64(cfg.Honeypots)
	perPop := float64(sybilReqs[1]) / float64(cfg.Honeypots)

	var b strings.Builder
	b.WriteString(stats.Table(
		[]string{"Honeypot class", "Sybil requests trapped", "Normal requests"},
		[][]string{
			{"unpopular (no friends)", fmt.Sprintf("%d", sybilReqs[0]), fmt.Sprintf("%d", normalReqs[0])},
			{"popular (60 seeded friends)", fmt.Sprintf("%d", sybilReqs[1]), fmt.Sprintf("%d", normalReqs[1])},
		}))
	fmt.Fprintf(&b, "per-honeypot Sybil requests: unpopular %.2f, popular %.2f\n", perUnpop, perPop)
	b.WriteString("Popularity-biased snowball targeting means only popular-looking honeypots trap Sybils (§4).\n")
	return Report{
		ID:    "ext2",
		Title: "Social honeypots trap Sybils only when engineered to appear popular",
		Body:  b.String(),
		Values: map[string]float64{
			"sybil_reqs_unpopular": float64(sybilReqs[0]),
			"sybil_reqs_popular":   float64(sybilReqs[1]),
			"per_hp_unpopular":     perUnpop,
			"per_hp_popular":       perPop,
		},
	}
}
