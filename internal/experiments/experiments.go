// Package experiments regenerates every table and figure in the
// paper's evaluation. Each driver returns a Report containing the
// rendered series/table (what cmd/experiments prints) plus the key
// scalar metrics (what the benchmark harness and regression tests
// assert against the paper's numbers).
//
// Figures 1–4 and Table 1 are behavioural: they run the full
// agent-level campaign simulation. Figures 5–9 and Table 2 are
// topological: they run the scalable sybtopo generative model at
// paper/10 scale by default. EXPERIMENTS.md records paper-vs-measured
// for every entry.
package experiments

import (
	"fmt"
	"strings"

	"sybilwild/internal/agents"
	"sybilwild/internal/features"
	"sybilwild/internal/sim"
	"sybilwild/internal/stats"
)

// Report is one experiment's output.
type Report struct {
	ID     string
	Title  string
	Body   string             // rendered tables/series for humans
	Values map[string]float64 // key metrics for assertions
}

func (r Report) String() string {
	return fmt.Sprintf("== %s: %s ==\n%s", r.ID, r.Title, r.Body)
}

// GroundTruthConfig sizes the behavioural campaign behind Figures 1–4
// and Table 1.
type GroundTruthConfig struct {
	Seed     int64
	Normals  int
	Sybils   int
	Hours    int64 // observation window (the paper measures over 400 h)
	ArriveH  int64 // sybil arrival spread, hours
	Params   agents.Params
	ShortRun bool // trimmed sizes for unit tests
}

// DefaultGroundTruth mirrors the paper's 400-hour measurement with a
// Sybil:normal ratio that avoids small-population saturation
// artifacts (see DESIGN.md).
func DefaultGroundTruth(seed int64) GroundTruthConfig {
	return GroundTruthConfig{
		Seed:    seed,
		Normals: 16000,
		Sybils:  200,
		Hours:   400,
		ArriveH: 100,
		Params:  agents.DefaultParams(),
	}
}

// SmallGroundTruth is a fast configuration for tests.
func SmallGroundTruth(seed int64) GroundTruthConfig {
	return GroundTruthConfig{
		Seed:     seed,
		Normals:  4000,
		Sybils:   60,
		Hours:    400,
		ArriveH:  100,
		Params:   agents.DefaultParams(),
		ShortRun: true,
	}
}

// GroundTruth is a finished campaign plus its labelled feature
// dataset, shared by the behavioural experiments.
type GroundTruth struct {
	Cfg GroundTruthConfig
	Pop *agents.Population
	DS  features.Dataset
	// SybilVecs/NormalVecs split DS by ground truth for CDF building.
	SybilVecs  []features.Vector
	NormalVecs []features.Vector
}

// BuildGroundTruth runs the campaign and extracts features once.
func BuildGroundTruth(cfg GroundTruthConfig) *GroundTruth {
	pop := agents.NewPopulation(cfg.Seed, cfg.Params)
	pop.Bootstrap(cfg.Normals)
	pop.LaunchSybils(cfg.Sybils, cfg.ArriveH*sim.TicksPerHour)
	pop.RunFor(cfg.Hours * sim.TicksPerHour)
	ds := features.Labelled(pop.Net, pop.Sybils, pop.Normals)
	gt := &GroundTruth{Cfg: cfg, Pop: pop, DS: ds}
	for i, v := range ds.Vectors {
		if ds.Labels[i] {
			gt.SybilVecs = append(gt.SybilVecs, v)
		} else {
			gt.NormalVecs = append(gt.NormalVecs, v)
		}
	}
	return gt
}

// activeOnly filters vectors to accounts that sent ≥1 request (the
// paper's per-account CDFs are over accounts with observable
// behaviour).
func activeOnly(vs []features.Vector) []features.Vector {
	out := vs[:0:0]
	for _, v := range vs {
		if v.OutSent > 0 {
			out = append(out, v)
		}
	}
	return out
}

func collect(vs []features.Vector, f func(features.Vector) float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = f(v)
	}
	return out
}

func renderSeries(name string, e *stats.ECDF, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "series %s (n=%d):\n", name, e.N())
	for _, p := range e.Points(n) {
		fmt.Fprintf(&b, "  x=%-12.4g cdf=%6.2f%%\n", p.X, p.Y)
	}
	return b.String()
}

// IDs lists all experiment identifiers in paper order.
func IDs() []string {
	return []string{
		"fig1", "fig2", "fig3", "fig4", "table1",
		"fig5", "fig6", "table2", "fig7", "fig8", "fig9",
		"table3", "ext1", "ext2", "ext3",
	}
}

// pct formats a ratio as a percentage string.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
