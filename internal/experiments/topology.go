package experiments

import (
	"fmt"
	"sort"
	"strings"

	"sybilwild/internal/graph"
	"sybilwild/internal/stats"
	"sybilwild/internal/sybtopo"
)

// Fig5 — Degree distribution of Sybil accounts: all edges vs Sybil
// edges only. Paper: all-edges distribution is unremarkable; only
// ≈20% of Sybils have any Sybil edge.
func Fig5(topo *sybtopo.Topology) Report {
	all := topo.TotalDegree()
	sybOnly := topo.SybilDegree()
	allF := make([]float64, len(all))
	var sybF []float64
	for i, d := range all {
		allF[i] = float64(d)
	}
	for _, d := range sybOnly {
		if d > 0 {
			sybF = append(sybF, float64(d))
		}
	}
	frac := topo.FracWithSybilEdge()
	ae := stats.NewECDF(allF)
	se := stats.NewECDF(sybF)

	var b strings.Builder
	b.WriteString(renderSeries("All edges", ae, 10))
	b.WriteString(renderSeries("Sybil edges (connected Sybils only)", se, 10))
	fmt.Fprintf(&b, "Sybils with ≥1 Sybil edge: %s (paper ≈20%%)\n", pct(frac))
	fmt.Fprintf(&b, "median total degree: %.0f\n", ae.Quantile(0.5))
	return Report{
		ID:    "fig5",
		Title: "The degree of Sybil accounts",
		Body:  b.String(),
		Values: map[string]float64{
			"frac_with_sybil_edge": frac,
			"median_total_degree":  ae.Quantile(0.5),
		},
	}
}

// Fig6 — Size distribution of connected Sybil components. Paper: 98%
// of components have <10 members, yet one giant component holds most
// connected Sybils.
func Fig6(topo *sybtopo.Topology) Report {
	comps := topo.Components()
	sizes := make([]float64, len(comps))
	connected := 0
	small := 0
	for i, c := range comps {
		sizes[i] = float64(c.Sybils)
		connected += c.Sybils
		if c.Sybils < 10 {
			small++
		}
	}
	e := stats.NewECDF(sizes)
	fracSmall := float64(small) / float64(max(len(comps), 1))
	giantShare := 0.0
	if connected > 0 && len(comps) > 0 {
		giantShare = float64(comps[0].Sybils) / float64(connected)
	}

	var b strings.Builder
	b.WriteString(renderSeries("component size", e, 10))
	fmt.Fprintf(&b, "components: %d; <10 members: %s (paper 98%%)\n", len(comps), pct(fracSmall))
	fmt.Fprintf(&b, "giant component: %d Sybils = %s of connected Sybils\n", comps[0].Sybils, pct(giantShare))
	return Report{
		ID:    "fig6",
		Title: "The size of connected Sybil components",
		Body:  b.String(),
		Values: map[string]float64{
			"num_components": float64(len(comps)),
			"frac_small":     fracSmall,
			"giant_share":    giantShare,
		},
	}
}

// Table2 — The five largest Sybil components: Sybils, Sybil edges,
// attack edges, audience.
func Table2(topo *sybtopo.Topology) Report {
	comps := topo.Components()
	n := min(5, len(comps))
	rows := make([][]string, 0, n)
	vals := map[string]float64{}
	for i := 0; i < n; i++ {
		c := comps[i]
		topo.FillAudience(&c)
		rows = append(rows, []string{
			fmt.Sprintf("%d", c.Sybils),
			fmt.Sprintf("%d", c.SybilEdges),
			fmt.Sprintf("%d", c.AtkEdges),
			fmt.Sprintf("%d", c.Audience),
		})
		vals[fmt.Sprintf("c%d_sybils", i)] = float64(c.Sybils)
		vals[fmt.Sprintf("c%d_sybil_edges", i)] = float64(c.SybilEdges)
		vals[fmt.Sprintf("c%d_attack_edges", i)] = float64(c.AtkEdges)
		vals[fmt.Sprintf("c%d_audience", i)] = float64(c.Audience)
	}
	body := stats.Table([]string{"Sybils", "Sybil Edges", "Attack Edges", "Audience"}, rows)
	return Report{
		ID:     "table2",
		Title:  "Statistics for the five largest Sybil components",
		Body:   body,
		Values: vals,
	}
}

// Fig7 — Scatter of Sybil edges vs attack edges per component. Paper:
// every component lies above y=x (more attack edges than Sybil edges).
func Fig7(topo *sybtopo.Topology) Report {
	comps := topo.Components()
	above := 0
	var b strings.Builder
	b.WriteString("sybil_edges  attack_edges\n")
	for i, c := range comps {
		if int64(c.SybilEdges) < c.AtkEdges {
			above++
		}
		if i < 20 {
			fmt.Fprintf(&b, "%11d  %12d\n", c.SybilEdges, c.AtkEdges)
		}
	}
	frac := float64(above) / float64(max(len(comps), 1))
	fmt.Fprintf(&b, "... (%d components)\ncomponents above y=x: %s (paper 100%%)\n", len(comps), pct(frac))
	return Report{
		ID:    "fig7",
		Title: "Sybil edges vs attack edges per component",
		Body:  b.String(),
		Values: map[string]float64{
			"frac_above_diagonal": frac,
		},
	}
}

// Fig8 — Order in which Sybils in the giant component added their
// Sybil friends. Paper: positions are nearly uniform (accidental),
// with a handful of solid vertical lines (intentional).
func Fig8(topo *sybtopo.Topology, sample int) Report {
	giant := topo.GiantComponent()
	r := stats.NewRand(topo.Cfg.Seed + 8)
	members := append([]graph.NodeID(nil), giant.Members...)
	stats.Shuffle(r, members)
	if len(members) > sample {
		members = members[:sample]
	}

	var positions []float64
	intentionalCols := 0
	detectedIntentional := 0
	for _, m := range members {
		eo := topo.EdgeOrderOf(m)
		if topo.IsIntentional(m) {
			intentionalCols++
		}
		if detectIntentionalColumn(eo) {
			detectedIntentional++
		}
		if eo.TotalEdges < 2 {
			continue
		}
		for _, rk := range eo.SybilRanks {
			positions = append(positions, float64(rk)/float64(eo.TotalEdges-1))
		}
	}
	mean := stats.Mean(positions)
	// Kolmogorov–Smirnov distance from uniform [0,1].
	ks := ksUniform(positions)

	var b strings.Builder
	fmt.Fprintf(&b, "sampled %d giant-component Sybils; %d Sybil-edge positions\n", len(members), len(positions))
	fmt.Fprintf(&b, "normalized position mean: %.3f (uniform ⇒ 0.5)\n", mean)
	fmt.Fprintf(&b, "KS distance from uniform: %.3f\n", ks)
	fmt.Fprintf(&b, "ground-truth intentional columns: %d; detected by initial-run heuristic: %d\n",
		intentionalCols, detectedIntentional)
	return Report{
		ID:    "fig8",
		Title: "The order of adding Sybil friends",
		Body:  b.String(),
		Values: map[string]float64{
			"position_mean":        mean,
			"ks_uniform":           ks,
			"intentional_truth":    float64(intentionalCols),
			"intentional_detected": float64(detectedIntentional),
		},
	}
}

// detectIntentionalColumn flags a Figure 8 column as intentional when
// the account's Sybil edges form a run at the very start of its friend
// list (the "solid vertical line" the paper circles).
func detectIntentionalColumn(eo sybtopo.EdgeOrder) bool {
	if len(eo.SybilRanks) == 0 || eo.TotalEdges < 10 {
		return false
	}
	head := eo.TotalEdges / 20
	if head < 2 {
		head = 2
	}
	inHead := 0
	for _, rk := range eo.SybilRanks {
		if rk <= head {
			inHead++
		}
	}
	// Deliberate chains link at account-creation time, so the first
	// Sybil edge sits at (essentially) rank zero; accidental edges land
	// there only ~2/total of the time.
	return inHead*2 >= len(eo.SybilRanks) && eo.SybilRanks[0] <= 1
}

func ksUniform(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var d float64
	n := float64(len(s))
	for i, x := range s {
		lo := float64(i)/n - x
		hi := x - float64(i+1)/n
		if lo < 0 {
			lo = -lo
		}
		if hi < 0 {
			hi = -hi
		}
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}

// Fig9 — Degree distribution within the giant Sybil component. Paper:
// 34.5% have degree 1 and 93.7% have degree ≤10 — a loose component no
// attacker would build on purpose.
func Fig9(topo *sybtopo.Topology) Report {
	giant := topo.GiantComponent()
	var degs []float64
	deg1, le10 := 0, 0
	for _, m := range giant.Members {
		d := topo.SybilGraph.Degree(m)
		degs = append(degs, float64(d))
		if d == 1 {
			deg1++
		}
		if d <= 10 {
			le10++
		}
	}
	e := stats.NewECDF(degs)
	n := float64(len(giant.Members))
	f1 := float64(deg1) / n
	f10 := float64(le10) / n

	var b strings.Builder
	b.WriteString(renderSeries("giant component Sybil-edge degree", e, 10))
	fmt.Fprintf(&b, "degree 1: %s (paper 34.5%%); degree ≤10: %s (paper 93.7%%)\n", pct(f1), pct(f10))
	return Report{
		ID:    "fig9",
		Title: "Degree distribution of the largest Sybil component",
		Body:  b.String(),
		Values: map[string]float64{
			"frac_deg1":  f1,
			"frac_le10":  f10,
			"giant_size": n,
		},
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
