package experiments

import (
	"fmt"

	"sybilwild/internal/sybtopo"
)

// Runner lazily builds the shared workloads (the behavioural campaign
// and the generated topology) and dispatches experiment IDs. The
// expensive inputs are built once and reused across experiments.
type Runner struct {
	GT   GroundTruthConfig
	Topo sybtopo.Config
	Ext  Ext1Config
	Ext2 Ext2Config
	// Fig8Sample is the number of giant-component Sybils sampled for
	// Figure 8 (the paper samples 1,000).
	Fig8Sample int

	gt   *GroundTruth
	topo *sybtopo.Topology
}

// NewRunner returns a paper-scale runner (topology at paper/10,
// behavioural campaign with 16K users).
func NewRunner(seed int64) *Runner {
	return &Runner{
		GT:         DefaultGroundTruth(seed),
		Topo:       topoWithSeed(sybtopo.DefaultConfig(), seed),
		Ext:        DefaultExt1(seed),
		Ext2:       DefaultExt2(seed),
		Fig8Sample: 1000,
	}
}

// NewSmallRunner returns a test-scale runner.
func NewSmallRunner(seed int64) *Runner {
	return &Runner{
		GT:         SmallGroundTruth(seed),
		Topo:       topoWithSeed(sybtopo.SmallConfig(seed), seed),
		Ext:        Ext1Config{Seed: seed, Normals: 1200, Sybils: 120},
		Ext2:       Ext2Config{Seed: seed, Normals: 2500, Sybils: 50, Honeypots: 20, Hours: 400},
		Fig8Sample: 300,
	}
}

func topoWithSeed(c sybtopo.Config, seed int64) sybtopo.Config {
	c.Seed = seed
	return c
}

// GroundTruth builds (once) and returns the behavioural campaign.
func (r *Runner) GroundTruth() *GroundTruth {
	if r.gt == nil {
		r.gt = BuildGroundTruth(r.GT)
	}
	return r.gt
}

// Topology builds (once) and returns the generated Sybil topology.
func (r *Runner) Topology() *sybtopo.Topology {
	if r.topo == nil {
		r.topo = sybtopo.Generate(r.Topo)
	}
	return r.topo
}

// Run dispatches one experiment by ID (see IDs).
func (r *Runner) Run(id string) (Report, error) {
	switch id {
	case "fig1":
		return Fig1(r.GroundTruth()), nil
	case "fig2":
		return Fig2(r.GroundTruth()), nil
	case "fig3":
		return Fig3(r.GroundTruth()), nil
	case "fig4":
		return Fig4(r.GroundTruth()), nil
	case "table1":
		return Table1(r.GroundTruth()), nil
	case "fig5":
		return Fig5(r.Topology()), nil
	case "fig6":
		return Fig6(r.Topology()), nil
	case "table2":
		return Table2(r.Topology()), nil
	case "fig7":
		return Fig7(r.Topology()), nil
	case "fig8":
		return Fig8(r.Topology(), r.Fig8Sample), nil
	case "fig9":
		return Fig9(r.Topology()), nil
	case "table3":
		return Table3(), nil
	case "ext1":
		return Ext1(r.Ext), nil
	case "ext2":
		return Ext2(r.Ext2), nil
	case "ext3":
		return Ext3(r.GroundTruth()), nil
	default:
		return Report{}, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
}

// RunAll executes every experiment in paper order.
func (r *Runner) RunAll() ([]Report, error) {
	var out []Report
	for _, id := range IDs() {
		rep, err := r.Run(id)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}
