package experiments

import (
	"fmt"
	"strings"

	"sybilwild/internal/detector"
	"sybilwild/internal/features"
	"sybilwild/internal/stats"
	"sybilwild/internal/svm"
)

// Fig1 — Average friend-invitation frequency over 1-hour and 400-hour
// windows (CDFs for normal users and Sybils). The paper's headline
// observations: accounts above ~20 invites per interval are Sybils at
// both time scales, and a 40 req/h cut catches ≈70% of Sybils with no
// false positives.
func Fig1(gt *GroundTruth) Report {
	syb := activeOnly(gt.SybilVecs)
	norm := activeOnly(gt.NormalVecs)
	s1 := stats.NewECDF(collect(syb, func(v features.Vector) float64 { return v.Freq1h }))
	s400 := stats.NewECDF(collect(syb, func(v features.Vector) float64 { return v.Freq400h }))
	n1 := stats.NewECDF(collect(norm, func(v features.Vector) float64 { return v.Freq1h }))
	n400 := stats.NewECDF(collect(norm, func(v features.Vector) float64 { return v.Freq400h }))

	sybAbove40 := 1 - s1.Eval(40)
	normAbove20both := 0.0
	for _, v := range norm {
		if v.Freq1h > 20 || v.Freq400h > 20 {
			normAbove20both++
		}
	}
	normAbove20both /= float64(max(len(norm), 1))
	sweep := detector.FrequencySweep(gt.DS, []float64{10, 20, 40, 60})

	var b strings.Builder
	b.WriteString(renderSeries("Sybil 1h", s1, 8))
	b.WriteString(renderSeries("Sybil 400h", s400, 8))
	b.WriteString(renderSeries("Normal 1h", n1, 8))
	b.WriteString(renderSeries("Normal 400h", n400, 8))
	b.WriteString(stats.AsciiCDF(60, 12, 0, 60, map[string]*stats.ECDF{
		"sybil-1h": s1, "normal-1h": n1,
	}))
	fmt.Fprintf(&b, "Sybils ≥40 invites/h: %s (paper ≈70%%)\n", pct(sybAbove40))
	fmt.Fprintf(&b, "Normals above 20/interval at either scale: %s (paper ≈0%%)\n", pct(normAbove20both))
	for _, p := range sweep {
		fmt.Fprintf(&b, "freq-only cut %4.0f/h: TPR=%s FPR=%s\n", p.Cut, pct(p.TPR), pct(p.FPR))
	}
	return Report{
		ID:    "fig1",
		Title: "Average friend invitation frequency (1h and 400h windows)",
		Body:  b.String(),
		Values: map[string]float64{
			"sybil_frac_ge40_per_h": sybAbove40,
			"normal_frac_above20":   normAbove20both,
			"cut40_tpr":             sweepVal(sweep, 40).TPR,
			"cut40_fpr":             sweepVal(sweep, 40).FPR,
			"sybil_median_1h":       s1.Quantile(0.5),
			"normal_median_400h":    n400.Quantile(0.5),
		},
	}
}

func sweepVal(ps []detector.SweepPoint, cut float64) detector.SweepPoint {
	for _, p := range ps {
		if p.Cut == cut {
			return p
		}
	}
	return detector.SweepPoint{}
}

// Fig2 — Ratio of accepted outgoing friend requests. Paper: normal
// mean ≈0.79, Sybil mean ≈0.26.
func Fig2(gt *GroundTruth) Report {
	syb := activeOnly(gt.SybilVecs)
	norm := activeOnly(gt.NormalVecs)
	se := stats.NewECDF(collect(syb, func(v features.Vector) float64 { return v.OutAccept }))
	ne := stats.NewECDF(collect(norm, func(v features.Vector) float64 { return v.OutAccept }))
	sybMean := stats.Mean(collect(syb, func(v features.Vector) float64 { return v.OutAccept }))
	normMean := stats.Mean(collect(norm, func(v features.Vector) float64 { return v.OutAccept }))

	var b strings.Builder
	b.WriteString(renderSeries("Sybil", se, 10))
	b.WriteString(renderSeries("Normal", ne, 10))
	b.WriteString(stats.AsciiCDF(60, 12, 0, 1, map[string]*stats.ECDF{"sybil": se, "normal": ne}))
	fmt.Fprintf(&b, "mean outgoing accept: sybil %.3f (paper 0.26), normal %.3f (paper 0.79)\n", sybMean, normMean)
	return Report{
		ID:    "fig2",
		Title: "Ratio of accepted outgoing friend requests",
		Body:  b.String(),
		Values: map[string]float64{
			"sybil_mean":  sybMean,
			"normal_mean": normMean,
		},
	}
}

// Fig3 — Ratio of accepted incoming friend requests. Paper: Sybils
// accept nearly everything (80% accept all); normal users are spread.
func Fig3(gt *GroundTruth) Report {
	withIncoming := func(vs []features.Vector) []features.Vector {
		var out []features.Vector
		for _, v := range vs {
			if v.InReceived > 0 {
				out = append(out, v)
			}
		}
		return out
	}
	syb := withIncoming(gt.SybilVecs)
	norm := withIncoming(gt.NormalVecs)
	se := stats.NewECDF(collect(syb, func(v features.Vector) float64 { return v.InAccept }))
	ne := stats.NewECDF(collect(norm, func(v features.Vector) float64 { return v.InAccept }))
	sybAll := 0.0
	for _, v := range syb {
		if v.InAccept >= 1 {
			sybAll++
		}
	}
	if len(syb) > 0 {
		sybAll /= float64(len(syb))
	}
	normStd := stats.Summarize(collect(norm, func(v features.Vector) float64 { return v.InAccept })).Std

	var b strings.Builder
	b.WriteString(renderSeries("Sybil", se, 10))
	b.WriteString(renderSeries("Normal", ne, 10))
	fmt.Fprintf(&b, "Sybils accepting 100%% of incoming: %s (paper ≈80%%)\n", pct(sybAll))
	fmt.Fprintf(&b, "normal incoming-accept std: %.3f (spread across the board)\n", normStd)
	return Report{
		ID:    "fig3",
		Title: "Ratio of accepted incoming friend requests",
		Body:  b.String(),
		Values: map[string]float64{
			"sybil_frac_accept_all": sybAll,
			"normal_std":            normStd,
		},
	}
}

// Fig4 — Clustering coefficient of each account's first 50 friends.
// Paper: normal mean 0.0386 vs Sybil 0.0006 (orders of magnitude).
// Absolute magnitudes scale with graph size; the shape target is the
// separation ratio.
func Fig4(gt *GroundTruth) Report {
	withDeg := func(ids []features.Vector) []float64 {
		var out []float64
		g := gt.Pop.Net.Graph()
		for _, v := range ids {
			if g.Degree(v.ID) >= 2 {
				out = append(out, v.CC)
			}
		}
		return out
	}
	syb := withDeg(gt.SybilVecs)
	norm := withDeg(gt.NormalVecs)
	se := stats.NewECDF(syb)
	ne := stats.NewECDF(norm)
	sybMean := stats.Mean(syb)
	normMean := stats.Mean(norm)
	ratio := 0.0
	if sybMean > 0 {
		ratio = normMean / sybMean
	}

	var b strings.Builder
	b.WriteString(renderSeries("Sybil cc", se, 10))
	b.WriteString(renderSeries("Normal cc", ne, 10))
	fmt.Fprintf(&b, "mean first-50 cc: sybil %.5f (paper 0.0006), normal %.5f (paper 0.0386), ratio %.1fx\n",
		sybMean, normMean, ratio)
	return Report{
		ID:    "fig4",
		Title: "Clustering coefficient of users' first 50 friends",
		Body:  b.String(),
		Values: map[string]float64{
			"sybil_mean":  sybMean,
			"normal_mean": normMean,
			"ratio":       ratio,
		},
	}
}

// Table1 — SVM vs threshold classifier on the ground truth, 5-fold
// cross-validation. Paper: both ≈99% accurate per class.
func Table1(gt *GroundTruth) Report {
	// Balance the dataset like the paper's 1000+1000 sample.
	bal := balance(gt)
	x, y := bal.Matrix()

	svmConf := svm.CrossValidate(x, y, 5, svm.DefaultConfig())

	// Threshold detector: the paper's published constants were tuned on
	// Renren's full graph; refit the cc cut at this scale via the same
	// stump procedure the adaptive scheme uses, cross-validated.
	thrConf := crossValidateRule(bal, 5, gt.Cfg.Seed)

	var b strings.Builder
	b.WriteString("SVM (5-fold CV):\n")
	b.WriteString(svmConf.String())
	b.WriteString("Threshold (5-fold CV, stump-fitted):\n")
	b.WriteString(thrConf.String())
	fitted := detector.FitRule(bal, detector.PaperRule())
	fmt.Fprintf(&b, "fitted rule: %v\n", fitted)
	return Report{
		ID:    "table1",
		Title: "Performance of SVM and threshold classifiers",
		Body:  b.String(),
		Values: map[string]float64{
			"svm_tpr": svmConf.TPR(), "svm_tnr": svmConf.TNR(),
			"svm_fpr": svmConf.FPR(), "svm_fnr": svmConf.FNR(),
			"thr_tpr": thrConf.TPR(), "thr_tnr": thrConf.TNR(),
			"thr_fpr": thrConf.FPR(), "thr_fnr": thrConf.FNR(),
		},
	}
}

// balance subsamples normals to match the Sybil count (paper protocol:
// 1000 + 1000).
func balance(gt *GroundTruth) features.Dataset {
	r := stats.NewRand(gt.Cfg.Seed + 77)
	var ds features.Dataset
	var normIdx []int
	for i, lab := range gt.DS.Labels {
		if lab {
			ds.Vectors = append(ds.Vectors, gt.DS.Vectors[i])
			ds.Labels = append(ds.Labels, true)
		} else {
			normIdx = append(normIdx, i)
		}
	}
	want := len(ds.Vectors)
	for _, j := range stats.SampleWithoutReplacement(r, len(normIdx), want) {
		ds.Vectors = append(ds.Vectors, gt.DS.Vectors[normIdx[j]])
		ds.Labels = append(ds.Labels, false)
	}
	return ds
}

// crossValidateRule evaluates the stump-fitted threshold rule with
// k-fold CV (fit on training folds, evaluate on the held-out fold).
func crossValidateRule(ds features.Dataset, k int, seed int64) stats.Confusion {
	r := stats.NewRand(seed + 31)
	fold := make([]int, len(ds.Vectors))
	var pos, neg []int
	for i, lab := range ds.Labels {
		if lab {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	stats.Shuffle(r, pos)
	stats.Shuffle(r, neg)
	for i, idx := range pos {
		fold[idx] = i % k
	}
	for i, idx := range neg {
		fold[idx] = i % k
	}
	var total stats.Confusion
	for f := 0; f < k; f++ {
		var train, test features.Dataset
		for i := range ds.Vectors {
			if fold[i] == f {
				test.Vectors = append(test.Vectors, ds.Vectors[i])
				test.Labels = append(test.Labels, ds.Labels[i])
			} else {
				train.Vectors = append(train.Vectors, ds.Vectors[i])
				train.Labels = append(train.Labels, ds.Labels[i])
			}
		}
		rule := detector.FitRule(train, detector.PaperRule())
		total.Add(rule.Evaluate(test))
	}
	return total
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
