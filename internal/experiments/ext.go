package experiments

import (
	"fmt"
	"strings"

	"sybilwild/internal/graph"
	"sybilwild/internal/stats"
	"sybilwild/internal/sybildefense"
)

// Table3 — Popular Sybil creation and management tools. The original
// table is a survey; here it reports the three implemented tool
// strategies and their configured behaviour (the behaviour the paper
// infers from the tools' advertised functionality).
func Table3() Report {
	rows := [][]string{
		{"Renren Marketing Assistant V1.0", "Windows", "$37", "snowball, bias 0.70, batch 120"},
		{"Renren Super Node Collector V1.0", "Windows", "Contact Author", "snowball, bias 0.95, batch 60"},
		{"Renren Almighty Assistant V5.8", "Windows", "Contact Author", "snowball, bias 0.50, batch 200 (+messaging)"},
	}
	body := stats.Table([]string{"Tool Name", "Platform", "Cost", "Implemented strategy"}, rows)
	return Report{
		ID:     "table3",
		Title:  "Popular Sybil creation and management tools",
		Body:   body,
		Values: map[string]float64{"tools": 3},
	}
}

// Ext1Config sizes the community-defense comparison.
type Ext1Config struct {
	Seed    int64
	Normals int
	Sybils  int
}

// DefaultExt1 returns the default comparison size.
func DefaultExt1(seed int64) Ext1Config {
	return Ext1Config{Seed: seed, Normals: 3000, Sybils: 300}
}

// Ext1 — the paper's §3 implication made explicit: run the four
// community-based defenses (plus the conductance-ranking view) against
// (a) an injected tight-knit Sybil community — the scenario the
// defenses were validated on — and (b) Sybils integrated the way the
// paper measured them in the wild (attack edges ≫ Sybil edges). A
// large accept-gap means the defense works; the paper's claim is the
// gap collapses in case (b).
func Ext1(cfg Ext1Config) Report {
	r := stats.NewRand(cfg.Seed)

	mask := func(g *graph.Graph, sybils []graph.NodeID) []bool {
		m := make([]bool, g.NumNodes())
		for _, s := range sybils {
			m[s] = true
		}
		return m
	}

	// Scenario A: textbook tight community. The attack cut is kept
	// small relative to the community (the defenses' own favourable
	// validation setting — the contrast with scenario B is the point).
	ga := sybildefense.HonestBackground(r.Fork(), cfg.Normals, 5)
	tight := sybildefense.InjectTightCommunity(ga, r.Fork(), cfg.Sybils, 6, cfg.Sybils/25+3, 1)
	maskA := mask(ga, tight)

	// Scenario B: integrated Sybils (the measured topology — each Sybil
	// has many accepted attack edges, essentially no Sybil edges).
	gb := sybildefense.HonestBackground(r.Fork(), cfg.Normals, 5)
	integrated := sybildefense.IntegratedSybils(gb, r.Fork(), cfg.Sybils, 20)
	maskB := mask(gb, integrated)

	ecfg := sybildefense.DefaultEvalConfig()
	ecfg.Seed = cfg.Seed
	resA := sybildefense.EvaluateAll(ga, maskA, ecfg)
	resB := sybildefense.EvaluateAll(gb, maskB, ecfg)

	var sb strings.Builder
	rows := make([][]string, 0, len(resA))
	vals := map[string]float64{}
	for i := range resA {
		rows = append(rows, []string{
			resA[i].Name,
			pct(resA[i].HonestAccept), pct(resA[i].SybilAccept), fmt.Sprintf("%.2f", resA[i].Gap()),
			pct(resB[i].HonestAccept), pct(resB[i].SybilAccept), fmt.Sprintf("%.2f", resB[i].Gap()),
		})
		vals["tight_gap_"+resA[i].Name] = resA[i].Gap()
		vals["wild_gap_"+resB[i].Name] = resB[i].Gap()
	}
	sb.WriteString(stats.Table([]string{
		"Defense", "tight:honest", "tight:sybil", "tight:gap",
		"wild:honest", "wild:sybil", "wild:gap",
	}, rows))
	sb.WriteString("A collapsed wild gap reproduces the paper's conclusion: community-based\n" +
		"defenses cannot separate Sybils that integrate into the social graph.\n")
	return Report{
		ID:     "ext1",
		Title:  "Community-based defenses: injected vs in-the-wild Sybil topology",
		Body:   sb.String(),
		Values: vals,
	}
}
