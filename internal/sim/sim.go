// Package sim provides the discrete-event simulation engine that
// drives the Renren-substitute OSN. Events execute in strict
// (time, insertion-sequence) order, so a run is fully deterministic
// given deterministic event bodies.
//
// Simulated time is measured in ticks; the conventional resolution used
// throughout sybilwild is one tick per simulated minute (TicksPerHour).
package sim

import "container/heap"

// Time is simulated time in ticks.
type Time = int64

// Conventional tick resolution: one tick per simulated minute.
const (
	TicksPerMinute Time = 1
	TicksPerHour   Time = 60 * TicksPerMinute
	TicksPerDay    Time = 24 * TicksPerHour
)

// Engine is a discrete-event scheduler. The zero value is ready to use.
// Engine is not safe for concurrent use; the simulation is single
// threaded by design so runs replay exactly.
type Engine struct {
	pq  eventHeap
	now Time
	seq uint64
	ran int
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() int { return e.ran }

// Pending returns the number of scheduled-but-unexecuted events.
func (e *Engine) Pending() int { return len(e.pq) }

// Schedule runs do at absolute time at. Scheduling in the past (before
// Now) clamps to Now: the event runs at the current time, after events
// already queued for that time.
func (e *Engine) Schedule(at Time, do func()) {
	if at < e.now {
		at = e.now
	}
	heap.Push(&e.pq, event{at: at, seq: e.seq, do: do})
	e.seq++
}

// After runs do d ticks from now.
func (e *Engine) After(d Time, do func()) {
	if d < 0 {
		d = 0
	}
	e.Schedule(e.now+d, do)
}

// Step executes the single earliest pending event and reports whether
// one existed.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(event)
	e.now = ev.at
	e.ran++
	ev.do()
	return true
}

// Run executes events until the queue is empty or the next event is
// scheduled strictly after until. The clock ends at min(until, last
// event time ≥ now). It returns the number of events executed.
func (e *Engine) Run(until Time) int {
	ran := 0
	for len(e.pq) > 0 && e.pq[0].at <= until {
		e.Step()
		ran++
	}
	if e.now < until {
		e.now = until
	}
	return ran
}

// RunAll drains the queue completely and returns the number of events
// executed.
func (e *Engine) RunAll() int {
	ran := 0
	for e.Step() {
		ran++
	}
	return ran
}

type event struct {
	at  Time
	seq uint64
	do  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}
