package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d", e.Now())
	}
}

func TestFIFOWithinSameTick(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-tick order broken: %v", got)
		}
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	var e Engine
	e.Schedule(100, func() {})
	e.Step()
	if e.Now() != 100 {
		t.Fatalf("Now = %d", e.Now())
	}
	fired := int64(-1)
	e.Schedule(50, func() { fired = e.Now() })
	e.RunAll()
	if fired != 100 {
		t.Fatalf("past event fired at %d, want 100", fired)
	}
}

func TestAfter(t *testing.T) {
	var e Engine
	e.Schedule(10, func() {
		e.After(5, func() {
			if e.Now() != 15 {
				t.Errorf("After fired at %d", e.Now())
			}
		})
	})
	e.RunAll()
}

func TestAfterNegativeClamps(t *testing.T) {
	var e Engine
	ran := false
	e.After(-10, func() { ran = true })
	e.RunAll()
	if !ran || e.Now() != 0 {
		t.Fatalf("negative After mishandled: ran=%v now=%d", ran, e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var got []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	n := e.Run(12)
	if n != 2 || len(got) != 2 {
		t.Fatalf("ran %d events: %v", n, got)
	}
	if e.Now() != 12 {
		t.Fatalf("Now = %d, want 12 (clock advances to until)", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run(100)
	if len(got) != 4 {
		t.Fatalf("remaining events not run: %v", got)
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	var e Engine
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.After(1, tick)
		}
	}
	e.Schedule(0, tick)
	e.RunAll()
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
	if e.Now() != 99 {
		t.Fatalf("Now = %d", e.Now())
	}
	if e.Executed() != 100 {
		t.Fatalf("Executed = %d", e.Executed())
	}
}

func TestTimeMonotoneProperty(t *testing.T) {
	f := func(times []int16) bool {
		var e Engine
		var fired []Time
		for _, raw := range times {
			at := Time(raw)
			if at < 0 {
				at = -at
			}
			e.Schedule(at, func() { fired = append(fired, e.Now()) })
		}
		e.RunAll()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTickConstants(t *testing.T) {
	if TicksPerHour != 60 || TicksPerDay != 1440 {
		t.Fatalf("tick constants changed: hour=%d day=%d", TicksPerHour, TicksPerDay)
	}
}
