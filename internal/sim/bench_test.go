package sim

import "testing"

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	var e Engine
	nop := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i%1024), nop)
		if i%1024 == 1023 {
			e.RunAll()
		}
	}
	b.StopTimer()
	e.RunAll()
}
