package sybildefense

import (
	"math"
	"sort"

	"sybilwild/internal/graph"
	"sybilwild/internal/stats"
)

// Result is one detector's acceptance behaviour on a labelled graph.
// A working defense shows SybilAccept ≪ HonestAccept; the paper's
// point is that on real topologies the two converge.
type Result struct {
	Name         string
	SybilAccept  float64 // fraction of Sybil suspects accepted
	HonestAccept float64 // fraction of honest suspects accepted
}

// Gap returns HonestAccept - SybilAccept, the defense's useful signal.
func (r Result) Gap() float64 { return r.HonestAccept - r.SybilAccept }

// EvalConfig sizes the evaluation.
type EvalConfig struct {
	Verifiers    int // honest verifiers sampled
	Suspects     int // suspects sampled per class
	SGRouteLen   int
	SLInstances  int
	SLRouteLen   int
	SIWalkLen    int
	SIWalks      int
	SIThresholdQ float64 // honest-score quantile used as threshold
	Seed         int64
}

// DefaultEvalConfig returns sizes suitable for graphs of a few
// thousand nodes.
func DefaultEvalConfig() EvalConfig {
	return EvalConfig{
		Verifiers:    25,
		Suspects:     200,
		SGRouteLen:   0, // 0 ⇒ auto: ~√(n·log n)
		SLInstances:  0, // 0 ⇒ auto: ~√m
		SLRouteLen:   0, // 0 ⇒ auto: ~log n
		SIWalkLen:    0, // 0 ⇒ auto: ~log n · 3
		SIWalks:      400,
		SIThresholdQ: 0.05,
		Seed:         1,
	}
}

// EvaluateAll runs all four defenses plus the community-ranking view
// against a labelled graph. isSybil marks the ground-truth Sybils;
// verifier/seed nodes are sampled from honest nodes with degree ≥ 2.
func EvaluateAll(g *graph.Graph, isSybil []bool, cfg EvalConfig) []Result {
	r := stats.NewRand(cfg.Seed)
	n := g.NumNodes()
	autoSet(&cfg, g)

	honest := make([]graph.NodeID, 0, n)
	sybils := make([]graph.NodeID, 0, n)
	for u := 0; u < n; u++ {
		id := graph.NodeID(u)
		if g.Degree(id) == 0 {
			continue
		}
		if isSybil[u] {
			sybils = append(sybils, id)
		} else if g.Degree(id) >= 2 {
			honest = append(honest, id)
		}
	}
	verifiers := pick(r, honest, cfg.Verifiers)
	honestSuspects := pick(r, honest, cfg.Suspects)
	sybilSuspects := pick(r, sybils, cfg.Suspects)

	var results []Result

	// SybilGuard and SybilLimit: pairwise verifier/suspect admission.
	sg := NewSybilGuard(g, cfg.SGRouteLen, uint64(cfg.Seed)+11)
	results = append(results, pairwise("SybilGuard", verifiers, honestSuspects, sybilSuspects, sg.Accepts))
	sl := NewSybilLimit(g, cfg.SLInstances, cfg.SLRouteLen, uint64(cfg.Seed)+23)
	results = append(results, pairwise("SybilLimit", verifiers, honestSuspects, sybilSuspects, sl.Accepts))

	// SybilInfer: global scores from trusted seeds, threshold at the
	// q-quantile of honest verifier scores.
	si := NewSybilInfer(g, cfg.SIWalkLen, cfg.SIWalks)
	scores := si.Scores(r.Fork(), verifiers)
	var honestScores []float64
	for _, h := range honestSuspects {
		honestScores = append(honestScores, scores[h])
	}
	thr := quantile(honestScores, cfg.SIThresholdQ)
	accept := si.Accepts(scores, thr)
	results = append(results, Result{
		Name:         "SybilInfer",
		SybilAccept:  acceptFrac(accept, sybilSuspects),
		HonestAccept: acceptFrac(accept, honestSuspects),
	})

	// SumUp: vote delivery ratio from each class toward a collector.
	su := NewSumUp(g)
	collector := verifiers[0]
	results = append(results, Result{
		Name:         "SumUp",
		SybilAccept:  su.VoteRatio(collector, sybilSuspects),
		HonestAccept: su.VoteRatio(collector, honestSuspects),
	})

	// Community ranking: accept the first half of the ranking.
	cr := NewCommunityRank(g)
	order, _ := cr.Ranking(verifiers[:min(5, len(verifiers))])
	rank := make([]int, n)
	for pos, u := range order {
		rank[u] = pos
	}
	half := len(order) / 2
	inTop := make([]bool, n)
	for u := 0; u < n; u++ {
		inTop[u] = rank[u] < half
	}
	results = append(results, Result{
		Name:         "CommunityRank",
		SybilAccept:  acceptFrac(inTop, sybilSuspects),
		HonestAccept: acceptFrac(inTop, honestSuspects),
	})
	return results
}

func autoSet(cfg *EvalConfig, g *graph.Graph) {
	n := float64(g.NumNodes())
	m := float64(g.NumEdges())
	if cfg.SGRouteLen <= 0 {
		cfg.SGRouteLen = int(sqrt(n*log2(n))) + 2
	}
	if cfg.SLInstances <= 0 {
		cfg.SLInstances = int(sqrt(m)) + 1
	}
	if cfg.SLRouteLen <= 0 {
		cfg.SLRouteLen = int(log2(n))*2 + 2
	}
	if cfg.SIWalkLen <= 0 {
		cfg.SIWalkLen = int(log2(n))*3 + 2
	}
}

func pairwise(name string, verifiers, honest, sybil []graph.NodeID, accepts func(v, s graph.NodeID) bool) Result {
	frac := func(suspects []graph.NodeID) float64 {
		if len(suspects) == 0 || len(verifiers) == 0 {
			return 0
		}
		ok := 0
		for _, s := range suspects {
			acc := 0
			for _, v := range verifiers {
				if accepts(v, s) {
					acc++
				}
			}
			// Majority admission across verifiers.
			if acc*2 >= len(verifiers) {
				ok++
			}
		}
		return float64(ok) / float64(len(suspects))
	}
	return Result{Name: name, SybilAccept: frac(sybil), HonestAccept: frac(honest)}
}

func pick(r *stats.Rand, from []graph.NodeID, k int) []graph.NodeID {
	if len(from) == 0 {
		return nil
	}
	idx := stats.SampleWithoutReplacement(r, len(from), k)
	out := make([]graph.NodeID, len(idx))
	for i, j := range idx {
		out[i] = from[j]
	}
	return out
}

func acceptFrac(accept []bool, nodes []graph.NodeID) float64 {
	if len(nodes) == 0 {
		return 0
	}
	c := 0
	for _, u := range nodes {
		if accept[u] {
			c++
		}
	}
	return float64(c) / float64(len(nodes))
}

func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return stats.Quantile(s, q)
}

// InjectTightCommunity appends a classic "textbook" Sybil region to g:
// nSybil new nodes densely connected among themselves (intraDeg edges
// per node) with only attackEdges links to random existing honest
// nodes. This is the synthetic scenario under which all four defenses
// were validated in their original papers; the ext1 experiment
// contrasts it with the emergent topology.
func InjectTightCommunity(g *graph.Graph, r *stats.Rand, nSybil, intraDeg, attackEdges int, t int64) []graph.NodeID {
	nHonest := g.NumNodes()
	first := g.AddNodes(nSybil)
	ids := make([]graph.NodeID, nSybil)
	for i := range ids {
		ids[i] = first + graph.NodeID(i)
	}
	// Ring for guaranteed connectivity, then random intra edges.
	for i := 0; i < nSybil; i++ {
		g.AddEdge(ids[i], ids[(i+1)%nSybil], t)
	}
	for i := 0; i < nSybil; i++ {
		for e := 0; e < intraDeg; e++ {
			j := r.Intn(nSybil)
			if j != i {
				g.AddEdge(ids[i], ids[j], t)
			}
		}
	}
	for e := 0; e < attackEdges; e++ {
		s := ids[r.Intn(nSybil)]
		h := graph.NodeID(r.Intn(nHonest))
		g.AddEdge(s, h, t)
	}
	return ids
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func sqrt(x float64) float64 { return math.Sqrt(x) }
func log2(x float64) float64 {
	if x <= 1 {
		return 1
	}
	return math.Log2(x)
}
