package sybildefense

import (
	"sort"

	"sybilwild/internal/graph"
)

// CommunityRank implements the unifying view of Viswanath et al.
// (SIGCOMM 2010): every community-based Sybil detector is, at heart, a
// ranking of nodes by how early they join a low-conductance community
// around a trusted seed. Nodes admitted early are "honest"; if Sybils
// formed a tight community behind a small cut, they would be admitted
// last (after the conductance valley).
type CommunityRank struct {
	G *graph.Graph
}

// NewCommunityRank wraps a graph.
func NewCommunityRank(g *graph.Graph) *CommunityRank {
	return &CommunityRank{G: g}
}

// Ranking grows a community greedily from the seeds: at each step the
// frontier node with the most links into the current community joins
// (degree-normalized), which is the classic greedy conductance
// heuristic. It returns nodes in admission order (seeds first) and the
// conductance after each admission. Unreachable nodes are appended at
// the end in ID order with conductance 1.
func (cr *CommunityRank) Ranking(seeds []graph.NodeID) (order []graph.NodeID, conductance []float64) {
	n := cr.G.NumNodes()
	inSet := make([]bool, n)
	linksIn := make([]int, n) // edges from node into current set
	// Running cut/volume for incremental conductance.
	cut, vol := 0, 0
	volAll := 0
	for u := 0; u < n; u++ {
		volAll += cr.G.Degree(graph.NodeID(u))
	}

	admit := func(u graph.NodeID) {
		inSet[u] = true
		d := cr.G.Degree(u)
		vol += d
		cut += d - 2*linksIn[u]
		for _, e := range cr.G.Neighbors(u) {
			linksIn[e.To]++
		}
		order = append(order, u)
		minVol := vol
		if volAll-vol < minVol {
			minVol = volAll - vol
		}
		if minVol <= 0 {
			conductance = append(conductance, 1)
		} else {
			conductance = append(conductance, float64(cut)/float64(minVol))
		}
	}

	for _, s := range seeds {
		if !inSet[s] {
			admit(s)
		}
	}
	// Frontier as a simple score-sorted selection; n is moderate for
	// the defense experiments, so an O(n) scan per admission is fine
	// and keeps the algorithm transparent.
	for len(order) < n {
		best := graph.NodeID(-1)
		bestScore := -1.0
		for u := 0; u < n; u++ {
			if inSet[u] || linksIn[u] == 0 {
				continue
			}
			score := float64(linksIn[u]) / float64(cr.G.Degree(graph.NodeID(u)))
			if score > bestScore || (score == bestScore && (best < 0 || graph.NodeID(u) < best)) {
				bestScore = score
				best = graph.NodeID(u)
			}
		}
		if best < 0 {
			break // disconnected remainder
		}
		admit(best)
	}
	// Append unreachable nodes.
	var rest []graph.NodeID
	for u := 0; u < n; u++ {
		if !inSet[u] {
			rest = append(rest, graph.NodeID(u))
		}
	}
	sort.Slice(rest, func(a, b int) bool { return rest[a] < rest[b] })
	for _, u := range rest {
		order = append(order, u)
		conductance = append(conductance, 1)
	}
	return order, conductance
}

// SybilRankQuality summarizes how well a ranking separates Sybils: the
// mean normalized rank of Sybil nodes (1.0 = all Sybils ranked last,
// 0.5 = indistinguishable from random).
func SybilRankQuality(order []graph.NodeID, isSybil []bool) float64 {
	if len(order) == 0 {
		return 0.5
	}
	var sum float64
	count := 0
	for pos, u := range order {
		if isSybil[u] {
			sum += float64(pos) / float64(len(order)-1+1)
			count++
		}
	}
	if count == 0 {
		return 0.5
	}
	return sum / float64(count)
}
