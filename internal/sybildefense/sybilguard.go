// Package sybildefense implements the decentralized, community-based
// Sybil detectors whose assumptions the paper tests (§3.1):
// SybilGuard, SybilLimit, SybilInfer and SumUp, plus the conductance
// ranking that Viswanath et al. showed all four reduce to.
//
// All four assume the Sybil region connects to the honest region
// through a small cut of attack edges. The paper's finding — and what
// the ext1 experiment reproduces — is that real Sybils have *more*
// attack edges than Sybil edges, so these detectors accept them at
// nearly the same rate as honest nodes.
//
// Fidelity notes: SybilGuard and SybilLimit are implemented with their
// defining primitive (convergent, back-traceable random routes on
// fixed per-node permutations) and their published acceptance
// conditions (route intersection; tail intersection with the birthday
// bound on √m tails). SybilInfer's MCMC sampler is replaced by the
// degree-normalized short-walk landing probability its model reduces
// to on a fast-mixing honest region; this simplification is
// documented, standard, and preserves the cut-detection behaviour the
// comparison needs.
package sybildefense

import (
	"sybilwild/internal/graph"
)

// SybilGuard performs random-route admission control (Yu et al.,
// SIGCOMM 2006): the verifier accepts a suspect if the suspect's
// random routes intersect the verifier's routes. Honest nodes' routes
// stay in the fast-mixing honest region and intersect with high
// probability; a Sybil region connected by few attack edges can only
// push a few routes into the honest region.
type SybilGuard struct {
	G        *graph.Graph
	RouteLen int
	// Perm fixes the per-node edge permutations; it must be shared by
	// all parties for routes to converge.
	Perm graph.RoutePermuter

	cache map[graph.NodeID]map[graph.NodeID]struct{}
}

// NewSybilGuard creates a SybilGuard instance with route length w.
// The canonical w is Θ(√(n log n)).
func NewSybilGuard(g *graph.Graph, routeLen int, permSeed uint64) *SybilGuard {
	return &SybilGuard{
		G:        g,
		RouteLen: routeLen,
		Perm:     graph.NewSeededPermuter(permSeed),
		cache:    make(map[graph.NodeID]map[graph.NodeID]struct{}),
	}
}

// routeSet returns the set of nodes on u's random route.
func (sg *SybilGuard) routeSet(u graph.NodeID) map[graph.NodeID]struct{} {
	if s, ok := sg.cache[u]; ok {
		return s
	}
	route := sg.G.RandomRoute(sg.Perm, u, sg.RouteLen)
	s := make(map[graph.NodeID]struct{}, len(route))
	for _, v := range route {
		s[v] = struct{}{}
	}
	sg.cache[u] = s
	return s
}

// Accepts reports whether verifier admits suspect: their routes must
// intersect.
func (sg *SybilGuard) Accepts(verifier, suspect graph.NodeID) bool {
	vs := sg.routeSet(verifier)
	ss := sg.routeSet(suspect)
	small, big := vs, ss
	if len(small) > len(big) {
		small, big = big, small
	}
	for node := range small {
		if _, ok := big[node]; ok {
			return true
		}
	}
	return false
}
