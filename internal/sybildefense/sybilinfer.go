package sybildefense

import (
	"sybilwild/internal/graph"
	"sybilwild/internal/stats"
)

// SybilInfer (Danezis & Mittal, NDSS 2009) scores nodes by how
// consistent they are with being inside the fast-mixing honest region.
// The full system samples honest sets with MCMC over a probabilistic
// model of random-walk traces; on a fast-mixing honest region the
// model's evidence reduces to how often walks from honest seeds visit
// a node relative to its degree (walks escape into a small-cut Sybil
// region rarely, so Sybil nodes are under-visited). This
// implementation computes that degree-normalized visit probability
// over full walk traces.
type SybilInfer struct {
	G       *graph.Graph
	WalkLen int
	Walks   int // walks per seed
}

// NewSybilInfer creates a scorer with the given walk shape.
func NewSybilInfer(g *graph.Graph, walkLen, walks int) *SybilInfer {
	return &SybilInfer{G: g, WalkLen: walkLen, Walks: walks}
}

// Scores runs walks from the trusted seeds and returns a per-node
// honesty score: trace visits normalized by degree. Nodes never
// visited score 0.
func (si *SybilInfer) Scores(r *stats.Rand, seeds []graph.NodeID) []float64 {
	visits := make([]float64, si.G.NumNodes())
	for _, s := range seeds {
		for k := 0; k < si.Walks; k++ {
			walk := si.G.RandomWalk(r, s, si.WalkLen)
			// Count every step of the trace (skipping the seed itself):
			// a walk that never crosses into the Sybil region spends all
			// of its steps accumulating honest-side evidence.
			for _, v := range walk[1:] {
				visits[v]++
			}
		}
	}
	for i := range visits {
		d := si.G.Degree(graph.NodeID(i))
		if d > 0 {
			visits[i] /= float64(d)
		}
	}
	return visits
}

// Accepts classifies nodes whose score reaches threshold as honest and
// returns the acceptance mask.
func (si *SybilInfer) Accepts(scores []float64, threshold float64) []bool {
	out := make([]bool, len(scores))
	for i, s := range scores {
		out[i] = s >= threshold
	}
	return out
}
