package sybildefense

import (
	"sybilwild/internal/graph"
	"sybilwild/internal/stats"
)

// HonestBackground builds a connected preferential-attachment honest
// region with n nodes and ≈m edges per arrival — the standard
// fast-mixing substrate the defense papers evaluate on.
func HonestBackground(r *stats.Rand, n, m int) *graph.Graph {
	g := graph.New(n)
	g.AddNodes(n)
	var endpoints []graph.NodeID
	for i := 1; i < n; i++ {
		for e := 0; e < m; e++ {
			var v graph.NodeID
			if len(endpoints) == 0 {
				v = graph.NodeID(r.Intn(i))
			} else {
				v = endpoints[r.Intn(len(endpoints))]
			}
			if v != graph.NodeID(i) && g.AddEdge(graph.NodeID(i), v, int64(i)) {
				endpoints = append(endpoints, graph.NodeID(i), v)
			}
		}
	}
	return g
}

// IntegratedSybils appends Sybils shaped like the paper's measured
// topology: each with attackPer accepted attack edges to random honest
// nodes and no Sybil edges at all.
func IntegratedSybils(g *graph.Graph, r *stats.Rand, nSybil, attackPer int) []graph.NodeID {
	nHonest := g.NumNodes()
	first := g.AddNodes(nSybil)
	ids := make([]graph.NodeID, nSybil)
	for i := range ids {
		ids[i] = first + graph.NodeID(i)
		for e := 0; e < attackPer; e++ {
			h := graph.NodeID(r.Intn(nHonest))
			g.AddEdge(ids[i], h, 1)
		}
	}
	return ids
}
