package sybildefense

import (
	"testing"

	"sybilwild/internal/agents"
	"sybilwild/internal/graph"
	"sybilwild/internal/sim"
	"sybilwild/internal/stats"
)

// honestGraph builds a connected preferential-attachment honest region.
func honestGraph(r *stats.Rand, n, m int) *graph.Graph {
	g := graph.New(n)
	g.AddNodes(n)
	var endpoints []graph.NodeID
	for i := 1; i < n; i++ {
		for e := 0; e < m; e++ {
			var v graph.NodeID
			if len(endpoints) == 0 {
				v = graph.NodeID(r.Intn(i))
			} else {
				v = endpoints[r.Intn(len(endpoints))]
			}
			if v != graph.NodeID(i) && g.AddEdge(graph.NodeID(i), v, int64(i)) {
				endpoints = append(endpoints, graph.NodeID(i), v)
			}
		}
	}
	return g
}

// integratedSybils appends Sybils that mimic the paper's measured
// topology: each has many attack edges to random honest nodes and
// (almost) no Sybil edges.
func integratedSybils(g *graph.Graph, r *stats.Rand, nSybil, attackPer int) []graph.NodeID {
	nHonest := g.NumNodes()
	first := g.AddNodes(nSybil)
	ids := make([]graph.NodeID, nSybil)
	for i := range ids {
		ids[i] = first + graph.NodeID(i)
		for e := 0; e < attackPer; e++ {
			h := graph.NodeID(r.Intn(nHonest))
			g.AddEdge(ids[i], h, 1)
		}
	}
	return ids
}

func maskFor(g *graph.Graph, sybils []graph.NodeID) []bool {
	mask := make([]bool, g.NumNodes())
	for _, s := range sybils {
		mask[s] = true
	}
	return mask
}

// TestDefensesCatchTightCommunity reproduces the validation scenario
// of the original defense papers: a dense Sybil region behind a narrow
// attack cut IS separable.
func TestDefensesCatchTightCommunity(t *testing.T) {
	r := stats.NewRand(11)
	g := honestGraph(r, 800, 5)
	sybils := InjectTightCommunity(g, r, 150, 6, 12, 99)
	mask := maskFor(g, sybils)
	cfg := DefaultEvalConfig()
	cfg.Suspects = 100
	results := EvaluateAll(g, mask, cfg)
	for _, res := range results {
		if res.HonestAccept < 0.55 {
			t.Errorf("%s: honest acceptance %.2f too low even on easy case", res.Name, res.HonestAccept)
		}
		if res.Gap() < 0.30 {
			t.Errorf("%s: gap %.2f on tight community, want ≥0.30 (honest %.2f sybil %.2f)",
				res.Name, res.Gap(), res.HonestAccept, res.SybilAccept)
		}
	}
}

// TestDefensesFailOnIntegratedSybils reproduces the paper's core
// claim: Sybils that integrate into the graph (attack edges ≫ Sybil
// edges) slip past every community-based defense.
func TestDefensesFailOnIntegratedSybils(t *testing.T) {
	r := stats.NewRand(13)
	g := honestGraph(r, 800, 5)
	sybils := integratedSybils(g, r, 150, 15)
	mask := maskFor(g, sybils)
	cfg := DefaultEvalConfig()
	cfg.Suspects = 100
	results := EvaluateAll(g, mask, cfg)
	for _, res := range results {
		if res.Gap() > 0.25 {
			t.Errorf("%s: gap %.2f on integrated sybils, want ≤0.25 (defense should fail)",
				res.Name, res.Gap())
		}
	}
}

func TestSybilGuardHonestIntersection(t *testing.T) {
	r := stats.NewRand(17)
	g := honestGraph(r, 400, 5)
	sg := NewSybilGuard(g, 60, 7)
	acc := 0
	for i := 0; i < 50; i++ {
		v := graph.NodeID(r.Intn(400))
		s := graph.NodeID(r.Intn(400))
		if sg.Accepts(v, s) {
			acc++
		}
	}
	if acc < 35 {
		t.Fatalf("honest-honest acceptance %d/50 too low", acc)
	}
}

func TestSybilGuardDeterministicRoutes(t *testing.T) {
	r := stats.NewRand(19)
	g := honestGraph(r, 100, 4)
	sg := NewSybilGuard(g, 20, 5)
	a := sg.Accepts(3, 60)
	b := sg.Accepts(3, 60)
	if a != b {
		t.Fatal("acceptance not deterministic")
	}
}

func TestSybilLimitTails(t *testing.T) {
	r := stats.NewRand(23)
	g := honestGraph(r, 300, 5)
	sl := NewSybilLimit(g, 40, 12, 3)
	ts := sl.tailSet(5)
	if len(ts) == 0 {
		t.Fatal("no tails")
	}
	for e := range ts {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("tail %v is not an edge", e)
		}
		if e[0] > e[1] {
			t.Fatalf("tail %v not canonical", e)
		}
	}
}

func TestSybilInferScoresHonestHigher(t *testing.T) {
	r := stats.NewRand(29)
	g := honestGraph(r, 600, 5)
	sybils := InjectTightCommunity(g, r, 100, 6, 6, 9)
	si := NewSybilInfer(g, 25, 300)
	seeds := []graph.NodeID{1, 2, 3, 4, 5}
	scores := si.Scores(r, seeds)
	var hs, ss float64
	for u := 0; u < 600; u++ {
		hs += scores[u]
	}
	for _, s := range sybils {
		ss += scores[s]
	}
	hs /= 600
	ss /= float64(len(sybils))
	if hs <= ss {
		t.Fatalf("honest mean score %.4f not above sybil %.4f", hs, ss)
	}
}

func TestSumUpBoundedByCut(t *testing.T) {
	r := stats.NewRand(31)
	g := honestGraph(r, 300, 4)
	// Tight community with exactly 5 attack edges: it can never deliver
	// more than 5 votes.
	sybils := InjectTightCommunity(g, r, 60, 5, 5, 9)
	su := NewSumUp(g)
	votes := su.CollectVotes(0, sybils)
	if votes > 5 {
		t.Fatalf("sybil votes %d exceed attack-edge cut 5", votes)
	}
	// Honest voters deliver much more.
	var honest []graph.NodeID
	for i := 1; i <= 60; i++ {
		honest = append(honest, graph.NodeID(i))
	}
	hv := su.CollectVotes(0, honest)
	if hv <= votes {
		t.Fatalf("honest votes %d not above sybil votes %d", hv, votes)
	}
}

func TestSumUpEmptyVoters(t *testing.T) {
	g := honestGraph(stats.NewRand(1), 50, 3)
	su := NewSumUp(g)
	if su.CollectVotes(0, nil) != 0 || su.VoteRatio(0, nil) != 0 {
		t.Fatal("empty voters should yield zero")
	}
}

func TestCommunityRankAdmitsSeedFirst(t *testing.T) {
	r := stats.NewRand(37)
	g := honestGraph(r, 200, 4)
	cr := NewCommunityRank(g)
	order, cond := cr.Ranking([]graph.NodeID{42})
	if order[0] != 42 {
		t.Fatalf("first admitted = %d", order[0])
	}
	if len(order) != g.NumNodes() || len(cond) != len(order) {
		t.Fatalf("ranking incomplete: %d of %d", len(order), g.NumNodes())
	}
	seen := map[graph.NodeID]bool{}
	for _, u := range order {
		if seen[u] {
			t.Fatalf("node %d admitted twice", u)
		}
		seen[u] = true
	}
	for _, c := range cond {
		if c < 0 || c > 1 {
			t.Fatalf("conductance out of range: %v", c)
		}
	}
}

func TestCommunityRankTightSybilsLast(t *testing.T) {
	r := stats.NewRand(41)
	g := honestGraph(r, 500, 5)
	sybils := InjectTightCommunity(g, r, 100, 6, 5, 9)
	mask := maskFor(g, sybils)
	cr := NewCommunityRank(g)
	order, _ := cr.Ranking([]graph.NodeID{0, 1, 2})
	q := SybilRankQuality(order, mask)
	if q < 0.75 {
		t.Fatalf("tight sybils mean normalized rank %.3f, want ≥0.75 (ranked late)", q)
	}
}

func TestSybilRankQualityUniform(t *testing.T) {
	order := []graph.NodeID{0, 1, 2, 3}
	if q := SybilRankQuality(order, []bool{false, false, false, false}); q != 0.5 {
		t.Fatalf("no sybils quality = %v, want neutral 0.5", q)
	}
	if q := SybilRankQuality(nil, nil); q != 0.5 {
		t.Fatalf("empty quality = %v", q)
	}
	// All sybils at the end → quality near 1.
	if q := SybilRankQuality(order, []bool{false, false, false, true}); q < 0.7 {
		t.Fatalf("last-ranked sybil quality = %v", q)
	}
}

func TestInjectTightCommunityShape(t *testing.T) {
	r := stats.NewRand(43)
	g := honestGraph(r, 100, 3)
	before := g.NumNodes()
	sybils := InjectTightCommunity(g, r, 30, 4, 7, 5)
	if g.NumNodes() != before+30 || len(sybils) != 30 {
		t.Fatal("wrong node counts")
	}
	mask := maskFor(g, sybils)
	cs := g.CutOf(mask)
	if cs.Cut > 7 {
		t.Fatalf("attack edges %d exceed requested 7", cs.Cut)
	}
	if cs.Internal < 30 {
		t.Fatalf("internal edges %d below ring size", cs.Internal)
	}
	// Conductance must be low — that is the point of the scenario.
	if c := g.Conductance(mask); c > 0.1 {
		t.Fatalf("tight community conductance %.3f", c)
	}
}

// TestDefensesFailOnEmergentCampaignTopology closes the loop with the
// agent simulation: the Sybil topology that *emerges* from tool-driven
// behaviour (not a synthetic stand-in) also defeats every
// community-based defense.
func TestDefensesFailOnEmergentCampaignTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign-backed defense eval in -short mode")
	}
	pop := agents.NewPopulation(19, agents.DefaultParams())
	pop.Bootstrap(3000)
	pop.LaunchSybils(40, 100*sim.TicksPerHour)
	pop.RunFor(400 * sim.TicksPerHour)

	cfg := DefaultEvalConfig()
	cfg.Suspects = 40
	results := EvaluateAll(pop.Net.Graph(), pop.Net.SybilMask(), cfg)
	for _, res := range results {
		if res.Gap() > 0.3 {
			t.Errorf("%s: gap %.2f on emergent campaign topology, want collapsed", res.Name, res.Gap())
		}
	}
}
