package sybildefense

import (
	"sybilwild/internal/graph"
)

// SumUp (Tran et al., NSDI 2009) bounds vote manipulation: votes flow
// from voters to a trusted vote collector over the social graph. Link
// capacities follow SumUp's ticket distribution: the collector hands
// out Cmax tickets that halve with each BFS level outward, so links
// near the collector are wide while links far away carry capacity 1.
// A Sybil region behind a narrow attack cut can therefore deliver at
// most ≈cut bogus votes — a bound the paper's measurements break,
// because real Sybil regions have *plenty* of attack edges.
type SumUp struct {
	G *graph.Graph
}

// NewSumUp wraps a graph.
func NewSumUp(g *graph.Graph) *SumUp {
	return &SumUp{G: g}
}

// CollectVotes returns how many of the voters' votes reach the
// collector: the max flow from a virtual super-source (one unit per
// voter) to the collector under ticket-distribution capacities with
// Cmax = len(voters).
func (su *SumUp) CollectVotes(collector graph.NodeID, voters []graph.NodeID) int {
	if len(voters) == 0 {
		return 0
	}
	n := su.G.NumNodes()
	// BFS levels from the collector for ticket distribution.
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	level[collector] = 0
	queue := []graph.NodeID{collector}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range su.G.Neighbors(u) {
			if level[e.To] < 0 {
				level[e.To] = level[u] + 1
				queue = append(queue, e.To)
			}
		}
	}

	// Augmented graph: copy + super-source with one unit per voter.
	aug := graph.New(n + 1)
	aug.AddNodes(n + 1)
	for _, e := range su.G.Edges() {
		aug.AddEdge(e.U, e.V, e.Time)
	}
	src := graph.NodeID(n)
	for _, v := range voters {
		if v != collector {
			aug.AddEdge(src, v, 0)
		}
	}

	// Ticket distribution: the collector starts with Cmax tickets; each
	// level's nodes consume one ticket apiece and pass the rest on, and
	// a level's remaining tickets are divided evenly over the edges
	// crossing to the next level. Once tickets run out, capacity is 1.
	cmax := len(voters)
	maxLevel := int32(0)
	for _, l := range level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	crossing := make([]int, maxLevel+1)  // edges from level ℓ to ℓ+1
	levelSize := make([]int, maxLevel+2) // nodes at level ℓ
	for u := 0; u < n; u++ {
		if level[u] < 0 {
			continue
		}
		levelSize[level[u]]++
		for _, e := range su.G.Neighbors(graph.NodeID(u)) {
			if level[e.To] == level[u]+1 {
				crossing[level[u]]++
			}
		}
	}
	capAt := make([]int, maxLevel+1)
	tickets := cmax
	for l := int32(0); l <= maxLevel; l++ {
		c := 1
		if tickets > 0 && crossing[l] > 0 {
			c = (tickets + crossing[l] - 1) / crossing[l]
			if c < 1 {
				c = 1
			}
		}
		capAt[l] = c
		tickets -= levelSize[l+1]
		if tickets < 0 {
			tickets = 0
		}
	}
	capOf := func(u, v graph.NodeID) int {
		if u == src || v == src {
			return 1 // one vote per voter
		}
		lu, lv := level[u], level[v]
		if lu < 0 || lv < 0 {
			return 1
		}
		if lu == lv {
			return 1 // intra-level links carry no ticketed capacity
		}
		l := lu
		if lv < l {
			l = lv
		}
		return capAt[l]
	}
	return aug.MaxFlowFunc(src, collector, capOf)
}

// VoteRatio is the fraction of votes delivered: collected / voters.
func (su *SumUp) VoteRatio(collector graph.NodeID, voters []graph.NodeID) float64 {
	if len(voters) == 0 {
		return 0
	}
	return float64(su.CollectVotes(collector, voters)) / float64(len(voters))
}
