package sybildefense

import (
	"sybilwild/internal/graph"
)

// SybilLimit (Yu et al., S&P 2008) refines SybilGuard: each node runs
// s ≈ √m independent random routes of length w = O(mixing time) and
// publishes only the *tail* (the last directed edge) of each. A
// verifier accepts a suspect when one of the suspect's tails collides
// with one of the verifier's tails (the "intersection condition"; the
// balance condition is omitted — it only tightens acceptance further,
// and the experiment measures the intersection behaviour the paper's
// topology argument is about).
type SybilLimit struct {
	G        *graph.Graph
	NumInst  int // s: number of route instances
	RouteLen int // w: route length

	perms []graph.RoutePermuter
	tails map[graph.NodeID]map[[2]graph.NodeID]struct{}
}

// NewSybilLimit creates an instance with s independent permutation
// universes and route length w.
func NewSybilLimit(g *graph.Graph, s, w int, seed uint64) *SybilLimit {
	sl := &SybilLimit{
		G:        g,
		NumInst:  s,
		RouteLen: w,
		tails:    make(map[graph.NodeID]map[[2]graph.NodeID]struct{}),
	}
	for i := 0; i < s; i++ {
		sl.perms = append(sl.perms, graph.NewSeededPermuter(seed+uint64(i)*0x9e37+1))
	}
	return sl
}

// tailSet returns u's published tails: the undirected-edge endpoints
// of the final hop of each of its s routes.
func (sl *SybilLimit) tailSet(u graph.NodeID) map[[2]graph.NodeID]struct{} {
	if t, ok := sl.tails[u]; ok {
		return t
	}
	t := make(map[[2]graph.NodeID]struct{}, sl.NumInst)
	for i := 0; i < sl.NumInst; i++ {
		route := sl.G.RandomRoute(sl.perms[i], u, sl.RouteLen)
		if len(route) >= 2 {
			a, b := route[len(route)-2], route[len(route)-1]
			if a > b {
				a, b = b, a
			}
			t[[2]graph.NodeID{a, b}] = struct{}{}
		}
	}
	sl.tails[u] = t
	return t
}

// Accepts reports whether the verifier's tails intersect the
// suspect's.
func (sl *SybilLimit) Accepts(verifier, suspect graph.NodeID) bool {
	vt := sl.tailSet(verifier)
	st := sl.tailSet(suspect)
	small, big := vt, st
	if len(small) > len(big) {
		small, big = big, small
	}
	for e := range small {
		if _, ok := big[e]; ok {
			return true
		}
	}
	return false
}
