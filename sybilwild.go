// Package sybilwild is a Go reproduction of "Uncovering Social Network
// Sybils in the Wild" (Yang et al., IMC 2011): a Renren-like OSN
// simulator with calibrated normal/Sybil behaviour models, the paper's
// threshold-based real-time Sybil detector (plus an SVM baseline), the
// community-based defenses whose assumptions the paper tests, and a
// harness that regenerates every table and figure in the paper's
// evaluation.
//
// This root package is the public facade: it re-exports the pieces a
// downstream user composes (campaign generation, feature extraction,
// detection, experiment drivers) while the implementations live in
// internal/ packages. See README.md for a tour and DESIGN.md for the
// system inventory.
package sybilwild

import (
	"fmt"

	"sybilwild/internal/agents"
	"sybilwild/internal/detector"
	"sybilwild/internal/experiments"
	"sybilwild/internal/features"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/svm"
	"sybilwild/internal/trace"
)

// Re-exported core types. These aliases are the supported public API;
// their methods are documented on the internal types.
type (
	// Network is the Renren-substitute online social network.
	Network = osn.Network
	// Account is a user profile plus account state.
	Account = osn.Account
	// AccountID identifies an account (and its graph node).
	AccountID = osn.AccountID
	// Event is one operational-log record.
	Event = osn.Event
	// Population wires the OSN, event engine and behaviour agents.
	Population = agents.Population
	// Params are the calibrated behaviour constants.
	Params = agents.Params
	// FeatureVector holds one account's behavioural features.
	FeatureVector = features.Vector
	// FeatureDataset is a labelled feature matrix.
	FeatureDataset = features.Dataset
	// Rule is the paper's conjunctive threshold classifier.
	Rule = detector.Rule
	// AdaptiveDetector is the feedback-tuned threshold detector.
	AdaptiveDetector = detector.Adaptive
	// Monitor is the real-time detection pipeline.
	Monitor = detector.Monitor
	// SVMConfig holds SVM training hyperparameters.
	SVMConfig = svm.Config
	// ExperimentReport is one experiment's rendered output + metrics.
	ExperimentReport = experiments.Report
	// Dataset is the serializable form of a finished simulation.
	Dataset = trace.Dataset
)

// DefaultParams returns the paper-calibrated behaviour constants.
func DefaultParams() Params { return agents.DefaultParams() }

// PaperRule returns the threshold rule printed in §2.3 of the paper.
func PaperRule() Rule { return detector.PaperRule() }

// CampaignConfig sizes a Sybil attack campaign simulation.
type CampaignConfig struct {
	Seed    int64
	Normals int   // background user population
	Sybils  int   // attacking Sybil accounts
	Hours   int64 // observation window (the paper measures 400 h)
	Params  Params
}

// DefaultCampaign mirrors the paper's 400-hour measurement window at a
// laptop-friendly scale.
func DefaultCampaign(seed int64) CampaignConfig {
	return CampaignConfig{Seed: seed, Normals: 8000, Sybils: 100, Hours: 400, Params: DefaultParams()}
}

// Campaign is a finished simulation with ground truth attached.
type Campaign struct {
	Pop *Population
}

// RunCampaign simulates a Sybil attack campaign: it bootstraps the
// background network, launches tool-driven Sybil agents, and runs the
// observation window.
func RunCampaign(cfg CampaignConfig) *Campaign {
	if cfg.Normals <= 0 || cfg.Hours <= 0 {
		panic(fmt.Sprintf("sybilwild: invalid campaign config %+v", cfg))
	}
	pop := agents.NewPopulation(cfg.Seed, cfg.Params)
	pop.Bootstrap(cfg.Normals)
	pop.LaunchSybils(cfg.Sybils, cfg.Hours/4*sim.TicksPerHour)
	pop.RunFor(cfg.Hours * sim.TicksPerHour)
	return &Campaign{Pop: pop}
}

// Network returns the campaign's social network.
func (c *Campaign) Network() *Network { return c.Pop.Net }

// GroundTruth returns the labelled feature dataset for every account.
func (c *Campaign) GroundTruth() FeatureDataset {
	return features.Labelled(c.Pop.Net, c.Pop.Sybils, c.Pop.Normals)
}

// Snapshot converts the campaign into a serializable dataset.
func (c *Campaign) Snapshot(description string, seed int64, hours int64) *Dataset {
	return trace.FromNetwork(c.Pop.Net,
		trace.Meta{Seed: seed, Description: description, DurationH: hours},
		c.Pop.Sybils, c.Pop.Normals)
}

// FitRule learns scale-appropriate thresholds from labelled data using
// the paper's per-feature cut procedure.
func FitRule(ds FeatureDataset) Rule {
	return detector.FitRule(ds, detector.PaperRule())
}

// ExtractFeatures computes the four behavioural features for the given
// accounts from a network's event log and graph.
func ExtractFeatures(net *Network, ids []AccountID) []FeatureVector {
	return features.Extract(net, ids)
}

// NewMonitor builds the real-time detection pipeline over a live
// network; attach it with net.RegisterObserver(m.Observe).
func NewMonitor(c detector.Classifier, net *Network, onFlag func(AccountID, int64)) *Monitor {
	return detector.NewMonitor(c, net.Graph(), onFlag)
}

// TrainSVM trains the from-scratch SVM; labels are ±1 with +1 = Sybil.
func TrainSVM(x [][]float64, y []float64, cfg SVMConfig) *svm.Model {
	return svm.Train(x, y, cfg)
}

// CrossValidateSVM runs stratified k-fold CV (the paper's Table 1
// protocol uses k = 5).
func CrossValidateSVM(ds FeatureDataset, k int, cfg SVMConfig) float64 {
	x, y := ds.Matrix()
	c := svm.CrossValidate(x, y, k, cfg)
	return c.Accuracy()
}

// DefaultSVMConfig returns hyperparameters suited to the Sybil
// feature space.
func DefaultSVMConfig() SVMConfig { return svm.DefaultConfig() }

// ExperimentIDs lists every reproducible table/figure identifier.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one of the paper's tables or figures at
// paper/10 scale. For repeated runs share a runner via NewExperiments.
func RunExperiment(id string, seed int64) (ExperimentReport, error) {
	return experiments.NewRunner(seed).Run(id)
}

// Experiments is a reusable experiment runner (workloads are built
// once and shared across drivers).
type Experiments = experiments.Runner

// NewExperiments returns a paper-scale experiment runner.
func NewExperiments(seed int64) *Experiments { return experiments.NewRunner(seed) }

// NewSmallExperiments returns a fast, test-scale experiment runner.
func NewSmallExperiments(seed int64) *Experiments { return experiments.NewSmallRunner(seed) }
