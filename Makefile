# Targets mirror .github/workflows/ci.yml one to one, so a green
# `make ci` locally means a green CI run.

GO ?= go

# Output file for bench-json; bump the number each PR that refreshes
# the committed perf baseline. BENCH_BASE is the previous PR's
# committed baseline that the fresh run is diffed against.
BENCH_OUT ?= BENCH_10.json
BENCH_BASE ?= BENCH_9.json

# Pinned staticcheck release; CI and local runs must agree on the
# check set, so bump this deliberately, not implicitly.
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: all build test race bench bench-json bench-gate fuzz-smoke profile fmt vet docs staticcheck ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Single-iteration pass over every benchmark: proves they run, reports
# the reproduced paper metrics, stays inside a CI budget.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Same pass, but emitted as machine-readable JSON so the perf
# trajectory is trackable PR over PR. Runs as a non-blocking CI step
# (perf numbers from shared runners inform, they don't gate), so it is
# deliberately NOT part of `make ci`.
#
# The headline benchmarks — the ones `benchjson -trend` tracks across
# committed BENCH_N.json files — run at pinned iteration counts, not
# -benchtime=1x: a single iteration measures setup noise as much as
# steady state, and trend lines are only comparable when every file's
# number came from the same workload. Everything else stays at 1x to
# hold the CI budget. BenchmarkPublishIngest runs separately at
# -cpu 1,4 — the ROADMAP's multi-core scaling evidence: the sequencer
# shrank to sequence-assignment only, so concurrent producers should
# overlap encode/fan-out work when cores exist.
bench-json:
	$(GO) test -bench=. -benchtime=1x -run='^$$' \
		-skip='^(BenchmarkPublishIngest|BenchmarkBroadcastDrain|BenchmarkBroadcastFanout|BenchmarkRelayFanout|BenchmarkLiveRebalance)$$' \
		./... > $(BENCH_OUT).tmp
	$(GO) test -bench='^(BenchmarkBroadcastDrain|BenchmarkBroadcastFanout|BenchmarkRelayFanout)$$' \
		-benchtime=50000x -run='^$$' ./internal/stream >> $(BENCH_OUT).tmp
	$(GO) test -bench=BenchmarkLiveRebalance -benchtime=3x -run='^$$' ./internal/detector >> $(BENCH_OUT).tmp
	$(GO) test -bench=BenchmarkPublishIngest -benchtime=20000x -run='^$$' -cpu=1,4 ./internal/stream >> $(BENCH_OUT).tmp
	$(GO) run ./cmd/benchjson -compare $(BENCH_BASE) < $(BENCH_OUT).tmp > $(BENCH_OUT)
	@rm -f $(BENCH_OUT).tmp

# Shard-scaling gate: the batch ingest path at shards=4 must not run
# slower than shards=1 (modest slack for single-core runners, where
# extra shards only add channel hops and no parallelism). A relative
# gate within one run survives noisy shared hardware; CI's bench-smoke
# job fails loudly when it trips.
#
# The partitioned-cluster gate bounds 4 partition-gated pipelines
# against 1 whole-feed pipeline. Total cluster work at K=4 is ~2.7x
# the single log (accepts replicate to every partition, requests to
# two) and single-core runners serialize the workers, so the bound is
# 4x: loose enough to pass where no parallelism exists, tight enough
# to catch filtering or contention pathologies.
#
# The fan-out gate is the single-encode claim as an invariant: the
# per-event broadcast cost with 16 subscribers draining shared frames
# must stay within 2x of 1 subscriber (it was ~16x when every session
# re-encoded its own copy). It runs at a fixed iteration count so the
# measured ns/op is steady-state fan-out, not server setup/teardown.
#
# The live-rebalance gate bounds the cutover pause — snapshot the old
# workers, split/merge-re-key, adopt — at 100k accounts, relative to a
# single 100k-account Snapshot measured in the same run (so runner
# speed cancels). The cost is dominated by the K+K' snapshot walks
# plus the re-key, hence the shape-dependent bounds: 4->2 within 6x of
# one snapshot, 3->5 within 10x.
#
# The relay gates are the relay tier's claims as invariants: root
# ingest (broadcast through the hop's adoption) with 64 subscribers
# hanging off the edge must stay within 1.5x of the same hop with 0 —
# downstream consumers must cost the root nothing — and a 2-level tree
# (2 edges x 64 subscribers, full drain) must hold parity (10% slack)
# with one broker draining 128 directly. The tree wins outright even
# on a single core (the flat broker's one write loop walks 128
# sessions per batch); on multi-core it is not close.
#
# The publish multi-core gate is ROADMAP's scaling evidence armed: 4
# producers at GOMAXPROCS=4 vs the same at GOMAXPROCS=1. On multi-core
# hardware the concurrent encode/fan-out overlap makes -4 faster; a
# single-core runner can only lose to scheduler thrash (~1.9x
# observed), so the bound is 2.5x — loose enough for 1 CPU, tight
# enough to catch a sequencer that re-grew serialized work under
# contention.
bench-gate:
	$(GO) test -bench=BenchmarkPipelineBatch -benchtime=1x -run='^$$' . | \
		$(GO) run ./cmd/benchjson \
		-gate 'BenchmarkPipelineBatch/shards=4<=BenchmarkPipelineBatch/shards=1*1.25' \
		> /dev/null
	$(GO) test -bench=BenchmarkPartitionedIngest -benchtime=1x -run='^$$' ./internal/cluster | \
		$(GO) run ./cmd/benchjson \
		-gate 'BenchmarkPartitionedIngest/workers=4<=BenchmarkPartitionedIngest/workers=1*4.0' \
		> /dev/null
	$(GO) test -bench='BenchmarkBroadcastFanout/subs=(1|16)$$' -benchtime=50000x -run='^$$' ./internal/stream | \
		$(GO) run ./cmd/benchjson \
		-gate 'BenchmarkBroadcastFanout/subs=16<=BenchmarkBroadcastFanout/subs=1*2.0' \
		> /dev/null
	$(GO) test -bench='^BenchmarkSnapshot$$|^BenchmarkLiveRebalance' -benchtime=1x -run='^$$' ./internal/detector | \
		$(GO) run ./cmd/benchjson \
		-gate 'BenchmarkLiveRebalance/k=4to2<=BenchmarkSnapshot/accounts=100000*6.0' \
		-gate 'BenchmarkLiveRebalance/k=3to5<=BenchmarkSnapshot/accounts=100000*10.0' \
		> /dev/null
	$(GO) test -bench=BenchmarkRelayFanout -benchtime=50000x -run='^$$' ./internal/stream | \
		$(GO) run ./cmd/benchjson \
		-gate 'BenchmarkRelayFanout/root-downstream=64<=BenchmarkRelayFanout/root-downstream=0*1.5' \
		-gate 'BenchmarkRelayFanout/tree-edges=2x64<=BenchmarkRelayFanout/flat-subs=128*1.1' \
		> /dev/null
	$(GO) test -bench=BenchmarkPublishIngest -benchtime=20000x -run='^$$' -cpu=1,4 ./internal/stream | \
		$(GO) run ./cmd/benchjson \
		-gate 'BenchmarkPublishIngest/producers=4-4<=BenchmarkPublishIngest/producers=4*2.5' \
		> /dev/null

# Short deterministic fuzz pass over the wire codecs: each target runs
# its committed corpus plus a few seconds of new coverage-guided
# inputs. Crashes fail the build; new interesting inputs stay in the
# local build cache (promote them to testdata/fuzz to commit them).
fuzz-smoke:
	@for tgt in FuzzBatch FuzzPBatch FuzzFBatch FuzzSnapHeader FuzzReadFrame FuzzRebal; do \
		$(GO) test ./internal/wire/ -run='^$$' -fuzz "^$$tgt$$" -fuzztime 5s || exit 1; \
	done

# CPU + allocation profiles of the batch ingest hot path. Inspect with
# `go tool pprof cpu.pprof` / `go tool pprof -sample_index=alloc_objects mem.pprof`.
profile:
	$(GO) test -bench=BenchmarkPipelineBatch -benchtime=3x -run='^$$' -benchmem \
		-cpuprofile cpu.pprof -memprofile mem.pprof .
	@echo "profiles written: cpu.pprof mem.pprof (binary: sybilwild.test)"

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Documentation gate: vet plus a check that every package (library and
# command alike) carries a package comment following the repo's
# `// Package <name>` / `// Command <name>` convention, so `go doc`
# always has something to say.
docs: vet
	@fail=0; \
	for d in $$($(GO) list -f '{{.Dir}}' ./...); do \
		if ! grep -q -E '^// (Package|Command) ' $$d/*.go; then \
			echo "missing package comment: $$d" >&2; fail=1; \
		fi; \
	done; \
	if [ $$fail -ne 0 ]; then exit 1; fi; \
	echo "all packages documented"

# Static analysis beyond vet, at a pinned release so local and CI
# findings always agree. Uses an installed staticcheck binary when one
# is on PATH, otherwise fetches the pinned version through `go run`
# (needs network once).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not in PATH; running pinned $(STATICCHECK_VERSION) via go run" >&2; \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	fi

ci: fmt vet build race bench bench-gate fuzz-smoke docs staticcheck
