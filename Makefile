# Targets mirror .github/workflows/ci.yml one to one, so a green
# `make ci` locally means a green CI run.

GO ?= go

.PHONY: all build test race bench fmt vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Single-iteration pass over every benchmark: proves they run, reports
# the reproduced paper metrics, stays inside a CI budget.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt vet build race bench
