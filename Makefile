# Targets mirror .github/workflows/ci.yml one to one, so a green
# `make ci` locally means a green CI run.

GO ?= go

.PHONY: all build test race bench fmt vet docs ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Single-iteration pass over every benchmark: proves they run, reports
# the reproduced paper metrics, stays inside a CI budget.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Documentation gate: vet plus a check that every package (library and
# command alike) carries a package comment following the repo's
# `// Package <name>` / `// Command <name>` convention, so `go doc`
# always has something to say.
docs: vet
	@fail=0; \
	for d in $$($(GO) list -f '{{.Dir}}' ./...); do \
		if ! grep -q -E '^// (Package|Command) ' $$d/*.go; then \
			echo "missing package comment: $$d" >&2; fail=1; \
		fi; \
	done; \
	if [ $$fail -ne 0 ]; then exit 1; fi; \
	echo "all packages documented"

ci: fmt vet build race bench docs
